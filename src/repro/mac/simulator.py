"""Discrete-event simulation of the carrier-sense MAC protocol.

The Fig. 19 experiment places two or three continuously backlogged
transmitters and one receiver underwater and measures the fraction of
packets involved in a collision (two packets overlapping in time), with
and without carrier sense.  The simulator reproduces that setup at the
timeline level:

* each transmitter draws an initial random backoff of several seconds;
* with carrier sense enabled it senses the channel every 80 ms, defers
  while the channel is busy (extending the backoff by one packet duration
  whenever it hears energy during the wait, as the paper describes) and
  transmits when the channel has stayed idle through its backoff;
* without carrier sense it simply transmits whenever its backoff expires.

Acoustic propagation delays between the devices are included because they
are what make carrier sense imperfect underwater: a packet launched less
than one propagation delay before another transmitter senses cannot be
heard in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.physics import SOUND_SPEED_M_S
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class TransmitterConfig:
    """One transmitter in the MAC experiment.

    Attributes
    ----------
    name:
        Identifier used in reports.
    distance_to_receiver_m:
        Distance to the receiver (5-10 m in the paper's deployment).
    num_packets:
        Number of packets this transmitter wants to send (120 in the paper).
    """

    name: str
    distance_to_receiver_m: float = 7.5
    num_packets: int = 120


@dataclass(frozen=True)
class TransmissionRecord:
    """A packet transmission that happened during the simulation."""

    transmitter: str
    start_time_s: float
    end_time_s: float
    collided: bool


@dataclass
class MacSimulationResult:
    """Outcome of one MAC simulation run.

    Attributes
    ----------
    transmissions:
        Every packet sent, with its time span and collision flag.
    carrier_sense_enabled:
        Whether carrier sense was active in this run.
    """

    transmissions: list[TransmissionRecord] = field(default_factory=list)
    carrier_sense_enabled: bool = True

    @property
    def num_packets(self) -> int:
        """Total packets transmitted."""
        return len(self.transmissions)

    @property
    def num_collided(self) -> int:
        """Packets that overlapped another transmission."""
        return sum(t.collided for t in self.transmissions)

    @property
    def collision_fraction(self) -> float:
        """Fraction of packets involved in a collision."""
        return self.num_collided / self.num_packets if self.num_packets else float("nan")

    def collision_fraction_for(self, transmitter: str) -> float:
        """Collision fraction restricted to one transmitter."""
        own = [t for t in self.transmissions if t.transmitter == transmitter]
        if not own:
            return float("nan")
        return sum(t.collided for t in own) / len(own)


class MacNetworkSimulator:
    """Simulates multiple backlogged transmitters sharing the acoustic channel."""

    def __init__(
        self,
        transmitters: list[TransmitterConfig],
        packet_duration_s: float = 0.6,
        sense_interval_s: float = 0.08,
        initial_backoff_max_s: float = 6.0,
        carrier_sense: bool = True,
        inter_device_distance_m: float = 5.0,
    ) -> None:
        if len(transmitters) < 1:
            raise ValueError("need at least one transmitter")
        require_positive(packet_duration_s, "packet_duration_s")
        require_positive(sense_interval_s, "sense_interval_s")
        self.transmitters = list(transmitters)
        self.packet_duration_s = float(packet_duration_s)
        self.sense_interval_s = float(sense_interval_s)
        self.initial_backoff_max_s = float(initial_backoff_max_s)
        self.carrier_sense = bool(carrier_sense)
        self.inter_device_distance_m = float(inter_device_distance_m)

    # ------------------------------------------------------------------ model
    def _propagation_delay_s(self) -> float:
        """Propagation delay between two transmitters (for sensing)."""
        return self.inter_device_distance_m / SOUND_SPEED_M_S

    def _channel_busy_at(
        self, time_s: float, transmissions: list[TransmissionRecord], listener: str
    ) -> bool:
        """Whether ``listener`` would hear energy on the channel at ``time_s``."""
        delay = self._propagation_delay_s()
        for record in transmissions:
            if record.transmitter == listener:
                continue
            if record.start_time_s + delay <= time_s <= record.end_time_s + delay:
                return True
        return False

    # -------------------------------------------------------------------- run
    def run(self, seed: int | np.random.Generator | None = None) -> MacSimulationResult:
        """Simulate until every transmitter has sent its packets."""
        rng = ensure_rng(seed)
        remaining = {t.name: t.num_packets for t in self.transmitters}
        # Next time each transmitter intends to attempt a transmission.
        next_attempt = {
            t.name: float(rng.uniform(0.0, self.initial_backoff_max_s)) for t in self.transmitters
        }
        backoff_packets = {t.name: 0 for t in self.transmitters}
        transmissions: list[TransmissionRecord] = []
        busy_until = {t.name: 0.0 for t in self.transmitters}

        # Event loop over transmitter attempts, in time order.
        while any(count > 0 for count in remaining.values()):
            name = min(
                (n for n, c in remaining.items() if c > 0), key=lambda n: next_attempt[n]
            )
            now = next_attempt[name]
            if now < busy_until[name]:
                next_attempt[name] = busy_until[name]
                continue
            if self.carrier_sense and self._channel_busy_at(now, transmissions, name):
                # Heard energy: extend the backoff by one packet duration so
                # the wait cannot elapse mid-packet, then re-sense later.
                backoff_packets[name] += 1
                next_attempt[name] = now + self.packet_duration_s + float(
                    rng.uniform(0.0, self.sense_interval_s)
                )
                continue
            # Clear to send (or carrier sense disabled).
            start = now
            end = start + self.packet_duration_s
            transmissions.append(TransmissionRecord(name, start, end, collided=False))
            remaining[name] -= 1
            busy_until[name] = end
            # Next packet follows after a random backoff measured in
            # multiples of the packet duration (paper section 2.4).
            multiples = int(rng.integers(1, 4))
            next_attempt[name] = end + multiples * self.packet_duration_s * float(
                rng.uniform(0.8, 1.5)
            )

        self._mark_collisions(transmissions)
        return MacSimulationResult(transmissions=transmissions, carrier_sense_enabled=self.carrier_sense)

    def _mark_collisions(self, transmissions: list[TransmissionRecord]) -> None:
        """Mark packets transmitted within one packet duration of each other.

        This matches the paper's accounting: packets whose start times fall
        within one packet duration of a packet from a different transmitter
        are counted as collided.
        """
        ordered = sorted(range(len(transmissions)), key=lambda i: transmissions[i].start_time_s)
        collided = [False] * len(transmissions)
        for idx in range(len(ordered)):
            i = ordered[idx]
            for jdx in range(idx + 1, len(ordered)):
                j = ordered[jdx]
                gap = transmissions[j].start_time_s - transmissions[i].start_time_s
                if gap >= self.packet_duration_s:
                    break
                if transmissions[i].transmitter != transmissions[j].transmitter:
                    collided[i] = True
                    collided[j] = True
        for i, record in enumerate(transmissions):
            transmissions[i] = TransmissionRecord(
                record.transmitter, record.start_time_s, record.end_time_s, collided[i]
            )
