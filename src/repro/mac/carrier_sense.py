"""Energy-detection carrier sense.

The physical carrier-sense primitive measures the average energy in the
1-4 kHz communication band over a short window (80 ms in the paper) and
compares it against a threshold calibrated from a few seconds of ambient
noise recorded at the site before use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.spectrum import band_power
from repro.utils.units import power_ratio_to_db
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class CarrierSenseConfig:
    """Parameters of the energy-detection carrier sense.

    Attributes
    ----------
    band_low_hz, band_high_hz:
        Frequency band monitored for energy.
    measurement_interval_s:
        How often the channel is sampled (80 ms in the paper).
    threshold_margin_db:
        The detection threshold is set this many dB above the measured
        ambient noise floor.
    """

    band_low_hz: float = 1000.0
    band_high_hz: float = 4000.0
    measurement_interval_s: float = 0.08
    threshold_margin_db: float = 6.0


class EnergyDetector:
    """Measures in-band energy and decides whether the channel is busy."""

    def __init__(
        self,
        config: CarrierSenseConfig | None = None,
        sample_rate_hz: float = 48000.0,
    ) -> None:
        require_positive(sample_rate_hz, "sample_rate_hz")
        self.config = config or CarrierSenseConfig()
        self.sample_rate_hz = float(sample_rate_hz)
        self.threshold_db: float | None = None

    @property
    def samples_per_measurement(self) -> int:
        """Number of samples in one 80 ms measurement window."""
        return int(round(self.config.measurement_interval_s * self.sample_rate_hz))

    def measure_db(self, samples: np.ndarray) -> float:
        """Return the in-band energy of a measurement window in dB."""
        power = band_power(
            samples, self.sample_rate_hz, self.config.band_low_hz, self.config.band_high_hz
        )
        return power_ratio_to_db(max(power, 1e-30))

    def calibrate(self, ambient_samples: np.ndarray) -> float:
        """Set the busy threshold from a recording of ambient noise.

        The paper computes the threshold from the average noise level over a
        few seconds in each environment before use.
        """
        ambient_samples = np.asarray(ambient_samples, dtype=float)
        window = self.samples_per_measurement
        if ambient_samples.size < window:
            raise ValueError("need at least one measurement window of ambient noise")
        num_windows = ambient_samples.size // window
        levels = [
            self.measure_db(ambient_samples[i * window:(i + 1) * window])
            for i in range(num_windows)
        ]
        self.threshold_db = float(np.mean(levels) + self.config.threshold_margin_db)
        return self.threshold_db

    def is_busy(self, samples: np.ndarray) -> bool:
        """Return whether the channel is busy according to the threshold."""
        if self.threshold_db is None:
            raise RuntimeError("detector must be calibrated before use")
        return self.measure_db(samples) > self.threshold_db
