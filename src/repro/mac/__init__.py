"""Carrier-sense MAC layer and multi-transmitter network simulation.

The paper's MAC (section 2.4) is carrier sense with random backoff: every
80 ms a device measures the energy in the 1-4 kHz band; before sending it
requires the channel to be idle, otherwise it waits a random backoff
measured in multiples of the packet duration, extending the backoff
whenever it hears energy during the wait.  Fig. 19 measures the fraction
of collisions with two and three transmitters, with and without carrier
sense.
"""

from repro.mac.carrier_sense import CarrierSenseConfig, EnergyDetector
from repro.mac.simulator import MacSimulationResult, MacNetworkSimulator, TransmitterConfig

__all__ = [
    "EnergyDetector",
    "CarrierSenseConfig",
    "MacNetworkSimulator",
    "MacSimulationResult",
    "TransmitterConfig",
]
