"""Forward error correction substrate.

The paper uses a rate-2/3 convolutional code with constraint length 7
followed by bit interleaving across OFDM subcarriers.  We implement the
standard approach of puncturing the (133, 171) octal rate-1/2 mother code
(the same code family used by GSM and satellite systems cited in the
paper) down to rate 2/3 and decoding with a Viterbi decoder that treats
punctured positions as erasures.
"""

from repro.fec.convolutional import ConvolutionalCode, PuncturedConvolutionalCode
from repro.fec.interleaver import SubcarrierInterleaver

__all__ = [
    "ConvolutionalCode",
    "PuncturedConvolutionalCode",
    "SubcarrierInterleaver",
]
