"""Forward error correction substrate.

The paper uses a rate-2/3 convolutional code with constraint length 7
followed by bit interleaving across OFDM subcarriers.  We implement the
standard approach of puncturing the (133, 171) octal rate-1/2 mother code
(the same code family used by GSM and satellite systems cited in the
paper) down to rate 2/3 and decoding with a Viterbi decoder that treats
punctured positions as erasures.
"""

from repro.fec.convolutional import (
    ConvolutionalCode,
    PuncturedConvolutionalCode,
    Trellis,
    hard_bits_to_soft,
    trellis_tables,
)
from repro.fec.interleaver import SubcarrierInterleaver
from repro.fec.reference import (
    reference_decode,
    reference_encode,
    reference_punctured_decode,
)

__all__ = [
    "ConvolutionalCode",
    "PuncturedConvolutionalCode",
    "SubcarrierInterleaver",
    "Trellis",
    "hard_bits_to_soft",
    "reference_decode",
    "reference_encode",
    "reference_punctured_decode",
    "trellis_tables",
]
