"""Loop-based reference Viterbi decoder (the pre-vectorization implementation).

The production decoder in :mod:`repro.fec.convolutional` is fully
vectorized; this module keeps the original per-state/per-bit Python loop
implementation around as an executable specification.  The golden
equivalence tests assert the two produce bit-identical decisions for every
input class (hard, soft, erasures, punctured, terminated or not), and the
``fec`` benchmark suite decodes the same stream with both to report the
measured speedup.
"""

from __future__ import annotations

import numpy as np

from repro.fec.convolutional import (
    ConvolutionalCode,
    PuncturedConvolutionalCode,
    hard_bits_to_soft,
)


def reference_encode(
    code: ConvolutionalCode, bits: np.ndarray | list[int], terminate: bool = True
) -> np.ndarray:
    """Encode ``bits`` by stepping the shift register one input bit at a time."""
    data = np.asarray(bits, dtype=int).ravel()
    if data.size and not np.all((data == 0) | (data == 1)):
        raise ValueError("bits must contain only 0s and 1s")
    if terminate:
        data = np.concatenate([data, np.zeros(code.num_tail_bits, dtype=int)])
    state = 0
    out = np.empty(data.size * code.num_outputs, dtype=int)
    for i, bit in enumerate(data):
        out[i * code.num_outputs:(i + 1) * code.num_outputs] = code._outputs[state, bit]
        state = code._next_state[state, bit]
    return out


def reference_decode(
    code: ConvolutionalCode,
    soft_bits: np.ndarray | list[float],
    num_data_bits: int | None = None,
    terminated: bool = True,
) -> np.ndarray:
    """Viterbi-decode with explicit per-state add-compare-select loops.

    Mirrors :meth:`ConvolutionalCode.decode` exactly, including the
    first-wins tie-breaking rule (a later branch must be *strictly* better
    to replace the survivor).
    """
    soft = np.asarray(soft_bits, dtype=float).ravel()
    if soft.size % code.num_outputs != 0:
        raise ValueError(
            f"coded stream length {soft.size} is not a multiple of {code.num_outputs}"
        )
    soft = hard_bits_to_soft(soft)
    num_steps = soft.size // code.num_outputs
    if num_steps == 0:
        return np.array([], dtype=int)
    tail = code.num_tail_bits if terminated else 0
    if num_data_bits is None:
        num_data_bits = num_steps - tail
    if num_data_bits < 0 or num_data_bits + tail > num_steps:
        raise ValueError("num_data_bits inconsistent with coded stream length")

    observations = soft.reshape(num_steps, code.num_outputs)
    path_metric = np.full(code.num_states, -np.inf)
    path_metric[0] = 0.0
    decisions = np.zeros((num_steps, code.num_states), dtype=np.int8)
    predecessors = np.zeros((num_steps, code.num_states), dtype=np.int32)

    expected = code._outputs.astype(float) * 2.0 - 1.0  # (state, bit, output)
    for step in range(num_steps):
        obs = observations[step]
        valid = ~np.isnan(obs)
        new_metric = np.full(code.num_states, -np.inf)
        new_decision = np.zeros(code.num_states, dtype=np.int8)
        new_pred = np.zeros(code.num_states, dtype=np.int32)
        if valid.any():
            branch = np.tensordot(expected[:, :, valid], obs[valid], axes=([2], [0]))
        else:
            branch = np.zeros((code.num_states, 2))
        for state in range(code.num_states):
            metric_here = path_metric[state]
            if metric_here == -np.inf:
                continue
            for bit in (0, 1):
                nxt = code._next_state[state, bit]
                candidate = metric_here + branch[state, bit]
                if candidate > new_metric[nxt]:
                    new_metric[nxt] = candidate
                    new_decision[nxt] = bit
                    new_pred[nxt] = state
        path_metric = new_metric
        decisions[step] = new_decision
        predecessors[step] = new_pred

    if terminated and path_metric[0] > -np.inf:
        state = 0
    else:
        state = int(np.argmax(path_metric))
    decoded = np.zeros(num_steps, dtype=int)
    for step in range(num_steps - 1, -1, -1):
        decoded[step] = decisions[step, state]
        state = predecessors[step, state]
    return decoded[:num_data_bits]


def reference_punctured_decode(
    code: PuncturedConvolutionalCode,
    soft_bits: np.ndarray | list[float],
    num_data_bits: int,
) -> np.ndarray:
    """Depuncture and decode with the reference loop decoder."""
    soft = np.asarray(soft_bits, dtype=float).ravel()
    expected = code.coded_length(num_data_bits)
    if soft.size != expected:
        raise ValueError(
            f"expected {expected} coded bits for {num_data_bits} data bits, got {soft.size}"
        )
    soft = hard_bits_to_soft(soft)
    total_input = num_data_bits + (code.mother.num_tail_bits if code.terminate else 0)
    mask = code._puncture_mask(total_input)
    depunctured = np.full(mask.size, np.nan)
    depunctured[mask] = soft
    return reference_decode(
        code.mother, depunctured, num_data_bits=num_data_bits, terminated=code.terminate
    )
