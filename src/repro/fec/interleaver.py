"""Bit interleaving across OFDM subcarriers.

The paper's interleaving rule (section 2.3.1) is built around the
observation that bit errors cluster on one subcarrier or two neighbouring
subcarriers.  Coded bits are therefore assigned symbol by symbol (fill one
OFDM symbol completely before starting the next), and *within* a symbol
successive bits are placed a stride of one third of the selected band
apart, so that consecutive coded bits never land on adjacent subcarriers.
With fewer than three selected subcarriers interleaving degenerates to the
identity mapping, exactly as the paper notes.
"""

from __future__ import annotations

import numpy as np


_PERMUTATION_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _stride_permutation(length: int, stride: int) -> np.ndarray:
    """Return a permutation of ``range(length)`` visiting indices by ``stride``.

    When ``stride`` does not divide evenly into ``length`` the walk simply
    skips already-visited positions, which keeps the mapping a true
    permutation for every ``(length, stride)`` pair.  Interleavers are
    constructed once per packet (one per band width), so the walk is cached
    module-wide.
    """
    cached = _PERMUTATION_CACHE.get((length, stride))
    if cached is not None:
        return cached
    visited = np.zeros(length, dtype=bool)
    order = np.empty(length, dtype=int)
    position = 0
    for i in range(length):
        while visited[position]:
            position = (position + 1) % length
        order[i] = position
        visited[position] = True
        position = (position + stride) % length
    order.setflags(write=False)
    _PERMUTATION_CACHE[(length, stride)] = order
    return order


class SubcarrierInterleaver:
    """Maps coded bits onto (symbol, subcarrier) positions and back.

    Parameters
    ----------
    bins_per_symbol:
        Number of selected OFDM subcarriers per data symbol (the width of
        the adapted frequency band).
    """

    def __init__(self, bins_per_symbol: int) -> None:
        if bins_per_symbol < 1:
            raise ValueError("bins_per_symbol must be at least 1")
        self.bins_per_symbol = int(bins_per_symbol)
        if self.bins_per_symbol < 3:
            # Paper: "If we use less than three bins then this defaults to
            # not using interleaving."
            self._within_symbol = np.arange(self.bins_per_symbol)
        else:
            stride = max(1, self.bins_per_symbol // 3)
            self._within_symbol = _stride_permutation(self.bins_per_symbol, stride)

    @property
    def within_symbol_order(self) -> np.ndarray:
        """Subcarrier positions visited, in the order bits are assigned."""
        return self._within_symbol.copy()

    def num_symbols(self, num_bits: int) -> int:
        """Number of OFDM data symbols needed to carry ``num_bits`` coded bits."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        return int(np.ceil(num_bits / self.bins_per_symbol)) if num_bits else 0

    def interleave(self, bits: np.ndarray | list[int], pad_value: int = 0) -> np.ndarray:
        """Return a (num_symbols, bins_per_symbol) grid of interleaved bits.

        Bits are placed symbol-first with the within-symbol stride order;
        unused positions in the final symbol are filled with ``pad_value``.
        """
        bits = np.asarray(bits).ravel()
        n_symbols = self.num_symbols(bits.size)
        grid = np.full((n_symbols, self.bins_per_symbol), pad_value, dtype=bits.dtype if bits.size else int)
        indices = np.arange(bits.size)
        grid[indices // self.bins_per_symbol,
             self._within_symbol[indices % self.bins_per_symbol]] = bits
        return grid

    def deinterleave(self, grid: np.ndarray, num_bits: int) -> np.ndarray:
        """Invert :meth:`interleave`, returning the first ``num_bits`` values.

        ``grid`` may contain soft values (floats); the dtype is preserved.
        """
        grid = np.asarray(grid)
        if grid.ndim != 2 or grid.shape[1] != self.bins_per_symbol:
            raise ValueError(
                f"grid must have shape (num_symbols, {self.bins_per_symbol}), got {grid.shape}"
            )
        capacity = grid.shape[0] * self.bins_per_symbol
        if num_bits > capacity:
            raise ValueError(f"cannot extract {num_bits} bits from a grid of {capacity} slots")
        indices = np.arange(num_bits)
        return grid[indices // self.bins_per_symbol,
                    self._within_symbol[indices % self.bins_per_symbol]]
