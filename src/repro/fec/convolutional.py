"""Convolutional coding and Viterbi decoding.

The mother code is the ubiquitous constraint-length-7, rate-1/2 code with
generator polynomials 133 and 171 (octal).  Rate 2/3 is obtained with the
standard puncturing pattern ``[[1, 1], [1, 0]]``: for every two input bits
the four mother-code output bits are transmitted except the second output
of the second bit.  The decoder runs a hard/soft-decision Viterbi algorithm
and treats punctured positions as erasures (zero branch-metric
contribution).

Both the encoder and decoder are terminated: ``constraint_length - 1`` zero
tail bits flush the encoder so the decoder can end in the all-zero state,
which is how the 16-bit AquaApp packets become 24 coded bits
(16 + 6 tail = 22 input bits... see :class:`PuncturedConvolutionalCode`
for the exact accounting used in this reproduction, which follows the
paper's 16 -> 24 coded-bit figure by puncturing the tail as well).

The decoder is fully vectorized: all branch metrics are computed up front
with one ``einsum`` over ``(steps, bits, states)`` and the add-compare-
select recursion exploits the trellis butterfly structure -- register
``r = (bit << (K-1)) | state`` maps to next state ``r >> 1``, so the two
branches entering each next state are adjacent in register order and one
``(2, num_states)`` broadcast add plus a pairwise maximum per step replaces
the per-state Python loops.  The slow loop implementation is retained in
:mod:`repro.fec.reference` as the golden reference the test suite checks
bit-identical equivalence against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_DEFAULT_POLYNOMIALS = (0o133, 0o171)


def _bits_array(bits: np.ndarray | list[int]) -> np.ndarray:
    arr = np.asarray(bits, dtype=int).ravel()
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must contain only 0s and 1s")
    return arr


def hard_bits_to_soft(values: np.ndarray | list[float]) -> np.ndarray:
    """Map hard 0/1 bits to antipodal -1/+1 soft values, NaN-preserving.

    Inputs whose finite entries are not all in ``{0, 1}`` are treated as
    genuine soft values and returned unchanged (as a float array).  ``NaN``
    entries mark erasures and stay ``NaN`` either way.
    """
    soft = np.asarray(values, dtype=float).ravel()
    finite = soft[~np.isnan(soft)]
    if finite.size == 0 or np.isin(finite, (0.0, 1.0)).all():
        soft = np.where(np.isnan(soft), np.nan, soft * 2.0 - 1.0)
    return soft


@dataclass(frozen=True)
class Trellis:
    """Precomputed trellis tables for one ``(constraint_length, polynomials)``.

    Attributes
    ----------
    next_state:
        ``(num_states, 2)`` next state for each (state, input bit).
    outputs:
        ``(num_states, 2, num_outputs)`` coded output bits per transition.
    register_outputs:
        ``(2 ** constraint_length, num_outputs)`` coded output bits indexed
        by the full shift register ``(bit << (K-1)) | state`` -- the
        table-driven lookup the vectorized encoder uses.
    expected_by_register:
        ``(2, num_states, num_outputs)`` antipodal (+/-1) expected outputs
        indexed ``[bit, state]``; flattening the leading two axes yields
        register order, which is what the butterfly ACS step consumes.
    """

    constraint_length: int
    polynomials: tuple[int, ...]
    next_state: np.ndarray
    outputs: np.ndarray
    register_outputs: np.ndarray
    expected_by_register: np.ndarray

    @property
    def num_states(self) -> int:
        return 1 << (self.constraint_length - 1)

    @property
    def num_outputs(self) -> int:
        return len(self.polynomials)


_TRELLIS_CACHE: dict[tuple[int, tuple[int, ...]], Trellis] = {}


def trellis_tables(constraint_length: int, polynomials: tuple[int, ...]) -> Trellis:
    """Return the (module-wide cached) trellis tables for a code.

    Modem and codec construction happens per experiment -- sometimes per
    packet in sweep workers -- so the tables are built once per
    ``(constraint_length, polynomials)`` and shared by every code instance.
    """
    key = (int(constraint_length), tuple(int(p) for p in polynomials))
    cached = _TRELLIS_CACHE.get(key)
    if cached is not None:
        return cached
    k, polys = key
    num_states = 1 << (k - 1)
    num_outputs = len(polys)
    registers = np.arange(1 << k, dtype=np.int64)
    register_outputs = np.empty((1 << k, num_outputs), dtype=np.int8)
    for i, poly in enumerate(polys):
        masked = registers & poly
        # Parity of the masked register bits (popcount mod 2), vectorized.
        parity = masked
        shift = 1
        while shift < k:
            parity = parity ^ (parity >> shift)
            shift <<= 1
        register_outputs[:, i] = (parity & 1).astype(np.int8)
    # Register r = (bit << (K-1)) | state; next state is r >> 1.
    bit_axis = registers >> (k - 1)
    state_axis = registers & (num_states - 1)
    outputs = np.empty((num_states, 2, num_outputs), dtype=np.int8)
    outputs[state_axis, bit_axis] = register_outputs
    next_state = np.empty((num_states, 2), dtype=np.int32)
    next_state[state_axis, bit_axis] = (registers >> 1).astype(np.int32)
    expected_by_register = (
        register_outputs.astype(float).reshape(2, num_states, num_outputs) * 2.0 - 1.0
    )
    # The tables are shared by every code instance with this key; freeze them
    # so an accidental in-place edit cannot corrupt all future decodes.
    for table in (next_state, outputs, register_outputs, expected_by_register):
        table.setflags(write=False)
    trellis = Trellis(
        constraint_length=k,
        polynomials=polys,
        next_state=next_state,
        outputs=outputs,
        register_outputs=register_outputs,
        expected_by_register=expected_by_register,
    )
    _TRELLIS_CACHE[key] = trellis
    return trellis


class ConvolutionalCode:
    """Rate-1/(number of polynomials) convolutional code with Viterbi decoding.

    Parameters
    ----------
    constraint_length:
        Number of input bits influencing each output (memory + 1).
    polynomials:
        Generator polynomials given in octal-style integers; each produces
        one output stream per input bit.
    """

    def __init__(
        self,
        constraint_length: int = 7,
        polynomials: tuple[int, ...] = _DEFAULT_POLYNOMIALS,
    ) -> None:
        if constraint_length < 2:
            raise ValueError("constraint_length must be at least 2")
        if len(polynomials) < 2:
            raise ValueError("need at least two generator polynomials")
        self.constraint_length = int(constraint_length)
        self.polynomials = tuple(int(p) for p in polynomials)
        self.num_outputs = len(self.polynomials)
        self.num_states = 1 << (self.constraint_length - 1)
        self._trellis = trellis_tables(self.constraint_length, self.polynomials)
        self._next_state = self._trellis.next_state
        self._outputs = self._trellis.outputs

    # ------------------------------------------------------------------ encode
    @property
    def rate(self) -> float:
        """Nominal code rate (ignoring tail bits)."""
        return 1.0 / self.num_outputs

    @property
    def num_tail_bits(self) -> int:
        """Number of zero bits appended to flush the encoder."""
        return self.constraint_length - 1

    def encode(self, bits: np.ndarray | list[int], terminate: bool = True) -> np.ndarray:
        """Encode ``bits`` and return the coded bit stream.

        With ``terminate=True`` (the default) the encoder is flushed with
        zero tail bits so the trellis ends in the all-zero state.
        """
        data = _bits_array(bits)
        if terminate:
            data = np.concatenate([data, np.zeros(self.num_tail_bits, dtype=int)])
        if data.size == 0:
            return np.array([], dtype=int)
        # The shift register at step i holds bits b[i-K+1..i]; building all
        # registers at once turns encoding into one sliding-window dot
        # product plus a table lookup.
        k = self.constraint_length
        padded = np.concatenate([np.zeros(k - 1, dtype=np.int64), data])
        windows = np.lib.stride_tricks.sliding_window_view(padded, k)
        registers = windows @ (1 << np.arange(k, dtype=np.int64))
        return self._trellis.register_outputs[registers].astype(int).ravel()

    # ------------------------------------------------------------------ decode
    def decode(
        self,
        soft_bits: np.ndarray | list[float],
        num_data_bits: int | None = None,
        terminated: bool = True,
    ) -> np.ndarray:
        """Viterbi-decode a stream of soft coded bits.

        Parameters
        ----------
        soft_bits:
            Soft values in the range ``[-1, 1]`` where positive means "this
            coded bit is more likely a 1" (hard bits 0/1 are also accepted
            and mapped to -1/+1).  ``NaN`` marks an erasure (used for
            punctured positions).
        num_data_bits:
            Number of *data* bits to return (excluding tail bits).  When
            omitted it is inferred from the stream length and termination.
        terminated:
            Whether the encoder was flushed to the zero state.
        """
        soft = np.asarray(soft_bits, dtype=float).ravel()
        if soft.size % self.num_outputs != 0:
            raise ValueError(
                f"coded stream length {soft.size} is not a multiple of {self.num_outputs}"
            )
        soft = hard_bits_to_soft(soft)
        num_steps = soft.size // self.num_outputs
        if num_steps == 0:
            return np.array([], dtype=int)
        tail = self.num_tail_bits if terminated else 0
        if num_data_bits is None:
            num_data_bits = num_steps - tail
        if num_data_bits < 0 or num_data_bits + tail > num_steps:
            raise ValueError("num_data_bits inconsistent with coded stream length")

        # Branch metrics for every (step, input bit, state) at once:
        # correlation between expected antipodal outputs and received soft
        # values; erasures (NaN) contribute nothing.
        observations = soft.reshape(num_steps, self.num_outputs)
        observations = np.where(np.isnan(observations), 0.0, observations)
        branch = np.einsum(
            "bso,to->tbs", self._trellis.expected_by_register, observations
        )

        num_states = self.num_states
        shift = self.constraint_length - 1
        state_mask = num_states - 1
        path_metric = np.full(num_states, -np.inf)
        path_metric[0] = 0.0
        decisions = np.empty((num_steps, num_states), dtype=np.int8)
        # Add-compare-select via the butterfly structure: candidate metrics
        # in register order are path_metric[state] + branch[bit, state]
        # (one broadcast add); registers 2n and 2n+1 both enter next state
        # n, so a reshape to (num_states, 2) pairs the two competing
        # branches and the comparison picks the survivor.  Ties keep the
        # even register, matching the reference decoder's first-wins rule.
        for step in range(num_steps):
            candidates = (branch[step] + path_metric).reshape(num_states, 2)
            take_odd = candidates[:, 1] > candidates[:, 0]
            decisions[step] = take_odd
            path_metric = np.where(take_odd, candidates[:, 1], candidates[:, 0])

        # Trace back from the zero state (terminated) or the best state.
        if terminated and path_metric[0] > -np.inf:
            state = 0
        else:
            state = int(np.argmax(path_metric))
        survivors = decisions.tolist()
        decoded = np.empty(num_steps, dtype=int)
        for step in range(num_steps - 1, -1, -1):
            register = 2 * state + survivors[step][state]
            decoded[step] = register >> shift
            state = register & state_mask
        return decoded[:num_data_bits]


class PuncturedConvolutionalCode:
    """Rate-2/3 punctured convolutional code used by the AquaApp modem.

    Encoding 16 data bits produces 24 coded bits, matching the packet
    accounting in the paper ("16 bits, 24 bits after applying a 2/3
    convolutional code").  To hit exactly that ratio the code is used
    *unterminated* for payloads (the short 16-bit packets keep the error
    bursts bounded anyway) unless ``terminate=True`` is requested, in which
    case tail bits are appended before puncturing.
    """

    #: Standard rate-2/3 puncturing pattern for the rate-1/2 mother code.
    PUNCTURE_PATTERN = ((1, 1), (1, 0))

    def __init__(
        self,
        constraint_length: int = 7,
        polynomials: tuple[int, int] = _DEFAULT_POLYNOMIALS,
        terminate: bool = False,
    ) -> None:
        self.mother = ConvolutionalCode(constraint_length, polynomials)
        self.terminate = bool(terminate)
        pattern = np.asarray(self.PUNCTURE_PATTERN, dtype=int)
        if pattern.shape[1] != self.mother.num_outputs:
            raise ValueError("puncture pattern width must equal the number of outputs")
        self._pattern = pattern
        self._period = pattern.shape[0]
        self._kept_per_period = int(pattern.sum())

    @property
    def rate(self) -> float:
        """Effective code rate after puncturing (2/3)."""
        return self._period / self._kept_per_period

    @property
    def constraint_length(self) -> int:
        """Constraint length of the mother code."""
        return self.mother.constraint_length

    def coded_length(self, num_data_bits: int) -> int:
        """Return the number of coded bits produced for ``num_data_bits``."""
        total_input = num_data_bits + (self.mother.num_tail_bits if self.terminate else 0)
        full_periods, remainder = divmod(total_input, self._period)
        kept = full_periods * self._kept_per_period
        if remainder:
            kept += int(self._pattern[:remainder].sum())
        return kept

    def _puncture_mask(self, num_input_bits: int) -> np.ndarray:
        """Boolean mask over the mother-code output marking transmitted bits."""
        periods = -(-num_input_bits // self._period)
        tiled = np.tile(self._pattern.astype(bool), (periods, 1))
        return tiled[:num_input_bits].ravel()

    def encode(self, bits: np.ndarray | list[int]) -> np.ndarray:
        """Encode and puncture ``bits``, returning the transmitted coded bits."""
        data = _bits_array(bits)
        mother_out = self.mother.encode(data, terminate=self.terminate)
        total_input = data.size + (self.mother.num_tail_bits if self.terminate else 0)
        mask = self._puncture_mask(total_input)
        return mother_out[mask]

    def decode(self, soft_bits: np.ndarray | list[float], num_data_bits: int) -> np.ndarray:
        """Depuncture and Viterbi-decode ``soft_bits`` into ``num_data_bits`` bits."""
        soft = np.asarray(soft_bits, dtype=float).ravel()
        expected = self.coded_length(num_data_bits)
        if soft.size != expected:
            raise ValueError(
                f"expected {expected} coded bits for {num_data_bits} data bits, got {soft.size}"
            )
        soft = hard_bits_to_soft(soft)
        total_input = num_data_bits + (self.mother.num_tail_bits if self.terminate else 0)
        mask = self._puncture_mask(total_input)
        depunctured = np.full(mask.size, np.nan)
        depunctured[mask] = soft
        return self.mother.decode(
            depunctured, num_data_bits=num_data_bits, terminated=self.terminate
        )
