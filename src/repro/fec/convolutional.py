"""Convolutional coding and Viterbi decoding.

The mother code is the ubiquitous constraint-length-7, rate-1/2 code with
generator polynomials 133 and 171 (octal).  Rate 2/3 is obtained with the
standard puncturing pattern ``[[1, 1], [1, 0]]``: for every two input bits
the four mother-code output bits are transmitted except the second output
of the second bit.  The decoder runs a hard/soft-decision Viterbi algorithm
and treats punctured positions as erasures (zero branch-metric
contribution).

Both the encoder and decoder are terminated: ``constraint_length - 1`` zero
tail bits flush the encoder so the decoder can end in the all-zero state,
which is how the 16-bit AquaApp packets become 24 coded bits
(16 + 6 tail = 22 input bits... see :class:`PuncturedConvolutionalCode`
for the exact accounting used in this reproduction, which follows the
paper's 16 -> 24 coded-bit figure by puncturing the tail as well).
"""

from __future__ import annotations

import numpy as np

_DEFAULT_POLYNOMIALS = (0o133, 0o171)


def _bits_array(bits: np.ndarray | list[int]) -> np.ndarray:
    arr = np.asarray(bits, dtype=int).ravel()
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must contain only 0s and 1s")
    return arr


class ConvolutionalCode:
    """Rate-1/(number of polynomials) convolutional code with Viterbi decoding.

    Parameters
    ----------
    constraint_length:
        Number of input bits influencing each output (memory + 1).
    polynomials:
        Generator polynomials given in octal-style integers; each produces
        one output stream per input bit.
    """

    def __init__(
        self,
        constraint_length: int = 7,
        polynomials: tuple[int, ...] = _DEFAULT_POLYNOMIALS,
    ) -> None:
        if constraint_length < 2:
            raise ValueError("constraint_length must be at least 2")
        if len(polynomials) < 2:
            raise ValueError("need at least two generator polynomials")
        self.constraint_length = int(constraint_length)
        self.polynomials = tuple(int(p) for p in polynomials)
        self.num_outputs = len(self.polynomials)
        self.num_states = 1 << (self.constraint_length - 1)
        self._build_tables()

    def _build_tables(self) -> None:
        """Precompute next-state and output tables for every (state, bit)."""
        mask = (1 << self.constraint_length) - 1
        self._next_state = np.zeros((self.num_states, 2), dtype=np.int32)
        self._outputs = np.zeros((self.num_states, 2, self.num_outputs), dtype=np.int8)
        for state in range(self.num_states):
            for bit in (0, 1):
                register = ((bit << (self.constraint_length - 1)) | state) & mask
                self._next_state[state, bit] = register >> 1
                for i, poly in enumerate(self.polynomials):
                    self._outputs[state, bit, i] = bin(register & poly).count("1") % 2

    # ------------------------------------------------------------------ encode
    @property
    def rate(self) -> float:
        """Nominal code rate (ignoring tail bits)."""
        return 1.0 / self.num_outputs

    @property
    def num_tail_bits(self) -> int:
        """Number of zero bits appended to flush the encoder."""
        return self.constraint_length - 1

    def encode(self, bits: np.ndarray | list[int], terminate: bool = True) -> np.ndarray:
        """Encode ``bits`` and return the coded bit stream.

        With ``terminate=True`` (the default) the encoder is flushed with
        zero tail bits so the trellis ends in the all-zero state.
        """
        data = _bits_array(bits)
        if terminate:
            data = np.concatenate([data, np.zeros(self.num_tail_bits, dtype=int)])
        state = 0
        out = np.empty(data.size * self.num_outputs, dtype=int)
        for i, bit in enumerate(data):
            out[i * self.num_outputs:(i + 1) * self.num_outputs] = self._outputs[state, bit]
            state = self._next_state[state, bit]
        return out

    # ------------------------------------------------------------------ decode
    def decode(
        self,
        soft_bits: np.ndarray | list[float],
        num_data_bits: int | None = None,
        terminated: bool = True,
    ) -> np.ndarray:
        """Viterbi-decode a stream of soft coded bits.

        Parameters
        ----------
        soft_bits:
            Soft values in the range ``[-1, 1]`` where positive means "this
            coded bit is more likely a 1" (hard bits 0/1 are also accepted
            and mapped to -1/+1).  ``NaN`` marks an erasure (used for
            punctured positions).
        num_data_bits:
            Number of *data* bits to return (excluding tail bits).  When
            omitted it is inferred from the stream length and termination.
        terminated:
            Whether the encoder was flushed to the zero state.
        """
        soft = np.asarray(soft_bits, dtype=float).ravel()
        if soft.size % self.num_outputs != 0:
            raise ValueError(
                f"coded stream length {soft.size} is not a multiple of {self.num_outputs}"
            )
        # Map hard bits to soft antipodal values, leaving genuine soft values alone.
        hard_like = np.isin(soft[~np.isnan(soft)], (0.0, 1.0)).all() if soft.size else True
        if hard_like:
            soft = np.where(np.isnan(soft), np.nan, soft * 2.0 - 1.0)
        num_steps = soft.size // self.num_outputs
        if num_steps == 0:
            return np.array([], dtype=int)
        tail = self.num_tail_bits if terminated else 0
        if num_data_bits is None:
            num_data_bits = num_steps - tail
        if num_data_bits < 0 or num_data_bits + tail > num_steps:
            raise ValueError("num_data_bits inconsistent with coded stream length")

        # Branch metrics: correlation between expected antipodal outputs and
        # received soft values; erasures contribute nothing.
        observations = soft.reshape(num_steps, self.num_outputs)
        path_metric = np.full(self.num_states, -np.inf)
        path_metric[0] = 0.0
        decisions = np.zeros((num_steps, self.num_states), dtype=np.int8)
        predecessors = np.zeros((num_steps, self.num_states), dtype=np.int32)

        expected = self._outputs.astype(float) * 2.0 - 1.0  # (state, bit, output)
        for step in range(num_steps):
            obs = observations[step]
            valid = ~np.isnan(obs)
            new_metric = np.full(self.num_states, -np.inf)
            new_decision = np.zeros(self.num_states, dtype=np.int8)
            new_pred = np.zeros(self.num_states, dtype=np.int32)
            if valid.any():
                branch = np.tensordot(expected[:, :, valid], obs[valid], axes=([2], [0]))
            else:
                branch = np.zeros((self.num_states, 2))
            for state in range(self.num_states):
                metric_here = path_metric[state]
                if metric_here == -np.inf:
                    continue
                for bit in (0, 1):
                    nxt = self._next_state[state, bit]
                    candidate = metric_here + branch[state, bit]
                    if candidate > new_metric[nxt]:
                        new_metric[nxt] = candidate
                        new_decision[nxt] = bit
                        new_pred[nxt] = state
            path_metric = new_metric
            decisions[step] = new_decision
            predecessors[step] = new_pred

        # Trace back from the zero state (terminated) or the best state.
        if terminated and path_metric[0] > -np.inf:
            state = 0
        else:
            state = int(np.argmax(path_metric))
        decoded = np.zeros(num_steps, dtype=int)
        for step in range(num_steps - 1, -1, -1):
            decoded[step] = decisions[step, state]
            state = predecessors[step, state]
        return decoded[:num_data_bits]


class PuncturedConvolutionalCode:
    """Rate-2/3 punctured convolutional code used by the AquaApp modem.

    Encoding 16 data bits produces 24 coded bits, matching the packet
    accounting in the paper ("16 bits, 24 bits after applying a 2/3
    convolutional code").  To hit exactly that ratio the code is used
    *unterminated* for payloads (the short 16-bit packets keep the error
    bursts bounded anyway) unless ``terminate=True`` is requested, in which
    case tail bits are appended before puncturing.
    """

    #: Standard rate-2/3 puncturing pattern for the rate-1/2 mother code.
    PUNCTURE_PATTERN = ((1, 1), (1, 0))

    def __init__(
        self,
        constraint_length: int = 7,
        polynomials: tuple[int, int] = _DEFAULT_POLYNOMIALS,
        terminate: bool = False,
    ) -> None:
        self.mother = ConvolutionalCode(constraint_length, polynomials)
        self.terminate = bool(terminate)
        pattern = np.asarray(self.PUNCTURE_PATTERN, dtype=int)
        if pattern.shape[1] != self.mother.num_outputs:
            raise ValueError("puncture pattern width must equal the number of outputs")
        self._pattern = pattern
        self._period = pattern.shape[0]
        self._kept_per_period = int(pattern.sum())

    @property
    def rate(self) -> float:
        """Effective code rate after puncturing (2/3)."""
        return self._period / self._kept_per_period

    @property
    def constraint_length(self) -> int:
        """Constraint length of the mother code."""
        return self.mother.constraint_length

    def coded_length(self, num_data_bits: int) -> int:
        """Return the number of coded bits produced for ``num_data_bits``."""
        total_input = num_data_bits + (self.mother.num_tail_bits if self.terminate else 0)
        mask = self._puncture_mask(total_input)
        return int(mask.sum())

    def _puncture_mask(self, num_input_bits: int) -> np.ndarray:
        """Boolean mask over the mother-code output marking transmitted bits."""
        mask = np.zeros(num_input_bits * self.mother.num_outputs, dtype=bool)
        for i in range(num_input_bits):
            row = self._pattern[i % self._period]
            for j in range(self.mother.num_outputs):
                mask[i * self.mother.num_outputs + j] = bool(row[j])
        return mask

    def encode(self, bits: np.ndarray | list[int]) -> np.ndarray:
        """Encode and puncture ``bits``, returning the transmitted coded bits."""
        data = _bits_array(bits)
        mother_out = self.mother.encode(data, terminate=self.terminate)
        total_input = data.size + (self.mother.num_tail_bits if self.terminate else 0)
        mask = self._puncture_mask(total_input)
        return mother_out[mask]

    def decode(self, soft_bits: np.ndarray | list[float], num_data_bits: int) -> np.ndarray:
        """Depuncture and Viterbi-decode ``soft_bits`` into ``num_data_bits`` bits."""
        soft = np.asarray(soft_bits, dtype=float).ravel()
        expected = self.coded_length(num_data_bits)
        if soft.size != expected:
            raise ValueError(
                f"expected {expected} coded bits for {num_data_bits} data bits, got {soft.size}"
            )
        # Convert hard bits to antipodal soft values if necessary.
        finite = soft[~np.isnan(soft)]
        if finite.size and np.isin(finite, (0.0, 1.0)).all():
            soft = np.where(np.isnan(soft), np.nan, soft * 2.0 - 1.0)
        total_input = num_data_bits + (self.mother.num_tail_bits if self.terminate else 0)
        mask = self._puncture_mask(total_input)
        depunctured = np.full(mask.size, np.nan)
        depunctured[mask] = soft
        return self.mother.decode(
            depunctured, num_data_bits=num_data_bits, terminated=self.terminate
        )
