"""Small shared utilities: unit conversions, RNG handling, validation."""

from repro.utils.rng import ensure_rng
from repro.utils.units import (
    amplitude_ratio_to_db,
    db_to_amplitude_ratio,
    db_to_power_ratio,
    power_ratio_to_db,
)
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
)

__all__ = [
    "ensure_rng",
    "db_to_power_ratio",
    "power_ratio_to_db",
    "db_to_amplitude_ratio",
    "amplitude_ratio_to_db",
    "require_positive",
    "require_non_negative",
    "require_in_range",
]
