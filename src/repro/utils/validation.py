"""Argument validation helpers shared across the package.

The simulator configuration surface is large (dozens of numeric parameters).
Raising clear errors at construction time is much cheaper than debugging a
NaN that surfaces three modules later.
"""

from __future__ import annotations

from typing import Any


def require_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_one_of(value: Any, options: tuple, name: str) -> Any:
    """Raise ``ValueError`` unless ``value`` is one of ``options``."""
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value
