"""The NaN <-> ``null`` JSON convention, in one place.

Result records (:mod:`repro.experiments.records`) and validation
summaries (:mod:`repro.validation.stats`) both persist floats that can
legitimately be NaN (no band ever selected, no delivered packets).
``json.dumps`` would emit bare ``NaN`` tokens -- valid Python, invalid
JSON -- so every serializer maps NaN to ``None`` on the way out and back
on the way in.  Keeping the pair here means the strict-JSON guarantee
has exactly one owner.
"""

from __future__ import annotations

import math


def nan_to_none(value: float) -> float | None:
    """Strict-JSON float: NaN becomes ``None``."""
    return None if isinstance(value, float) and math.isnan(value) else value


def none_to_nan(value) -> float:
    """Inverse of :func:`nan_to_none` for loaders."""
    return float("nan") if value is None else float(value)
