"""Deterministic random-number-generator handling.

Every stochastic component in the simulator (noise synthesis, channel
realizations, MAC backoff) accepts either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  Routing them all through
:func:`ensure_rng` keeps experiments reproducible and makes it easy to share
one generator across components when correlated draws are desired.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a fresh unpredictable generator, an ``int`` for a
        deterministic generator, or an existing generator which is returned
        unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``.

    Useful when a benchmark sweeps over many independent trials and each
    trial must be reproducible regardless of how many draws earlier trials
    consumed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2 ** 63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
