"""Decibel and unit conversion helpers.

The modem and channel code work in two different dB conventions:

* *power* quantities (SNR, noise levels, transmission loss) use
  ``10 * log10``;
* *amplitude* quantities (filter gains, reflection coefficients) use
  ``20 * log10``.

Keeping the conversions in one module avoids the classic factor-of-two
mistakes when the two conventions meet.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-30


def db_to_power_ratio(db: float | np.ndarray) -> float | np.ndarray:
    """Convert a dB value to a linear *power* ratio (``10 ** (db / 10)``)."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0) if isinstance(db, np.ndarray) else 10.0 ** (db / 10.0)


def power_ratio_to_db(ratio: float | np.ndarray) -> float | np.ndarray:
    """Convert a linear *power* ratio to dB (``10 * log10(ratio)``)."""
    arr = np.asarray(ratio, dtype=float)
    out = 10.0 * np.log10(np.maximum(arr, _EPS))
    return out if isinstance(ratio, np.ndarray) else float(out)


def db_to_amplitude_ratio(db: float | np.ndarray) -> float | np.ndarray:
    """Convert a dB value to a linear *amplitude* ratio (``10 ** (db / 20)``)."""
    return 10.0 ** (np.asarray(db, dtype=float) / 20.0) if isinstance(db, np.ndarray) else 10.0 ** (db / 20.0)


def amplitude_ratio_to_db(ratio: float | np.ndarray) -> float | np.ndarray:
    """Convert a linear *amplitude* ratio to dB (``20 * log10(ratio)``)."""
    arr = np.asarray(ratio, dtype=float)
    out = 20.0 * np.log10(np.maximum(arr, _EPS))
    return out if isinstance(ratio, np.ndarray) else float(out)


def signal_power(samples: np.ndarray) -> float:
    """Return the mean power (mean squared amplitude) of a real waveform."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        return 0.0
    return float(np.mean(samples ** 2))


def signal_rms(samples: np.ndarray) -> float:
    """Return the root-mean-square amplitude of a waveform."""
    return float(np.sqrt(signal_power(samples)))


def snr_db(signal: np.ndarray, noise: np.ndarray) -> float:
    """Return the SNR in dB between a signal waveform and a noise waveform."""
    return power_ratio_to_db(signal_power(signal) / max(signal_power(noise), _EPS))
