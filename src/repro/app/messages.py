"""The 240-message hand-signal catalog.

The app interface (Fig. 2) offers 240 predefined messages corresponding to
hand signals used by recreational and professional divers, organized into
eight categories, with the 20 most common displayed prominently.  Since the
exact list is not published, the catalog here is generated from realistic
signal families per category; what matters for the reproduction is the
*size* (240 messages -> 8 bits per message, two messages per 16-bit
packet), the category structure and the stable numbering.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The eight message categories offered by the app's filter.
CATEGORIES: tuple[str, ...] = (
    "safety",
    "air and gas",
    "direction",
    "marine life",
    "equipment",
    "communication",
    "team coordination",
    "surface and boat",
)


@dataclass(frozen=True)
class HandSignalMessage:
    """One predefined message.

    Attributes
    ----------
    message_id:
        Stable identifier in ``[0, 239]``; this is the value encoded into
        packets.
    text:
        Human-readable message text.
    category:
        One of :data:`CATEGORIES`.
    is_common:
        Whether the message belongs to the 20 most commonly used signals
        shown prominently in the app.
    """

    message_id: int
    text: str
    category: str
    is_common: bool = False


_BASE_SIGNALS: dict[str, list[str]] = {
    "safety": [
        "OK?", "OK!", "Something is wrong", "Help me", "Emergency - surface now",
        "Stop", "Slow down", "Stay with your buddy", "Watch me", "Danger ahead",
        "I am cold", "I have a cramp", "Ear problem", "I feel dizzy", "Abort the dive",
        "Share air with me", "Check your gauge", "Safety stop here", "Hold on to the line",
        "Do not touch", "Decompression required", "Stay at this depth", "I am entangled",
        "Free me from the line", "Mask problem", "Fin problem", "I cannot equalize",
        "Take a breather", "Breathe slowly", "Calm down",
    ],
    "air and gas": [
        "How much air do you have?", "I have 200 bar", "I have 150 bar", "I have 100 bar",
        "I have 70 bar", "I have 50 bar - reserve", "I am low on air", "I am out of air",
        "Share your octopus", "Switch to backup regulator", "Check your tank valve",
        "Gas mixture problem", "Turn the dive on thirds", "Air consumption is high",
        "Breathe from the long hose", "I can donate air", "Check for leaks",
        "Bubbles behind you", "Valve drill", "Air is back to normal",
        "Start your ascent on 100 bar", "Save your air", "Regulator free-flow",
        "Purge your regulator", "Tank is loose", "Monitor your gas closely",
        "Rich mix in use", "Lean mix in use", "Switch gas now", "No decompression gas",
    ],
    "direction": [
        "Go up", "Go down", "Level off here", "Turn around", "Go left", "Go right",
        "Go straight ahead", "Follow me", "You lead", "Come here", "Stay here",
        "Move back", "Go under the obstacle", "Go over the obstacle", "Swim faster",
        "Swim slower", "Head to the anchor line", "Head to the shore", "Head to the boat",
        "Circle this spot", "Search pattern left", "Search pattern right",
        "Keep this heading", "Reverse the heading", "Go to the buoy", "Descend together",
        "Ascend together", "Hold this depth", "Drift with the current", "Against the current",
    ],
    "marine life": [
        "Look - a fish", "Look - a shark", "Look - a turtle", "Look - an octopus",
        "Look - a ray", "Look - an eel", "Look - a crab", "Look - a lobster",
        "Look - a seahorse", "Look - a jellyfish", "Careful - stinging animal",
        "Careful - spiny urchin", "Careful - fire coral", "Do not touch the coral",
        "School of fish ahead", "Big animal nearby", "Something under the rock",
        "Take a photo of this", "Rare species here", "Nesting area - keep away",
        "Dolphins nearby", "Seal nearby", "Whale in the distance", "Anemone with clownfish",
        "Nudibranch here", "Camouflaged animal", "Animal is sleeping", "Feeding activity",
        "Keep your distance", "Wonderful reef here",
    ],
    "equipment": [
        "Check your equipment", "My computer failed", "My light failed", "Torch on",
        "Torch off", "Camera problem", "Weight belt problem", "Drop your weights",
        "BCD inflation problem", "BCD dump valve stuck", "Drysuit inflation problem",
        "Drysuit squeeze", "Hood problem", "Glove problem", "Knife needed",
        "Reel problem", "Deploy the surface marker", "Surface marker deployed",
        "Line is cut", "Spare mask needed", "Battery is low", "Strap is loose",
        "Clip it off", "Stow the equipment", "Hand me the tool", "Take the camera",
        "Bring the spare tank", "Check the o-ring", "Rinse it at the surface", "Fix it later",
    ],
    "communication": [
        "Yes", "No", "I do not understand", "Repeat the message", "Wait a moment",
        "Look at me", "Look over there", "Listen for the recall", "Write it on the slate",
        "Read my slate", "Message received", "Ignore the last message", "Ask the guide",
        "Tell the group", "Signal the boat", "Count off the team", "Buddy check",
        "Everything is fine", "Question", "Answer me", "I will explain at the surface",
        "Use hand signals", "Use the app", "Send the SOS beacon", "Cancel the SOS",
        "Acknowledge", "Stand by", "Done", "Good job", "Thank you",
    ],
    "team coordination": [
        "Gather the group", "Spread out", "Pair up", "Switch buddies", "Stay in formation",
        "You are the lead diver", "You are the rear diver", "Keep the group together",
        "Wait for the slower divers", "Count the divers", "One diver is missing",
        "Search for the missing diver", "Regroup at the anchor", "Regroup at the reef",
        "Time check", "Depth check", "Turn the dive now", "Begin the exercise",
        "End the exercise", "Demonstrate the skill", "Repeat the skill", "Watch the student",
        "Assist your buddy", "Tow your buddy", "Hold hands during ascent",
        "Maintain eye contact", "Stay within sight", "Close the gap", "Give me space",
        "Follow the dive plan",
    ],
    "surface and boat": [
        "Surface now", "Meet at the surface", "Boat is overhead", "Watch for boat traffic",
        "Inflate your BCD at the surface", "Signal OK to the boat", "Need pickup",
        "Swim to the boat", "Swim to the shore", "Hold the mooring line",
        "Current is strong at the surface", "Waves are high", "Stay off the propeller",
        "Ladder is ready", "Hand up your fins", "Keep your mask on at the surface",
        "Wait for the recall signal", "Recall - return to the boat", "Drifting - send help",
        "Set the flag", "Take the line from the boat", "Boat is leaving soon",
        "Next group enters the water", "Stay clear of the entry zone", "Exit the water now",
        "Rest at the surface", "Report to the divemaster", "Log the dive",
        "Rinse off on deck", "Dive is complete",
    ],
}

#: Message identifiers of the 20 most common hand signals (shown prominently).
COMMON_MESSAGE_IDS: tuple[int, ...] = tuple(range(20))


def _build_catalog() -> tuple[HandSignalMessage, ...]:
    messages: list[HandSignalMessage] = []
    message_id = 0
    for category in CATEGORIES:
        for text in _BASE_SIGNALS[category]:
            messages.append(
                HandSignalMessage(
                    message_id=message_id,
                    text=text,
                    category=category,
                    is_common=message_id in COMMON_MESSAGE_IDS,
                )
            )
            message_id += 1
    if len(messages) != 240:
        raise RuntimeError(f"catalog must contain exactly 240 messages, built {len(messages)}")
    return tuple(messages)


#: The full 240-message catalog, indexed by message id.
MESSAGE_CATALOG: tuple[HandSignalMessage, ...] = _build_catalog()


def get_message(message_id: int) -> HandSignalMessage:
    """Return the catalog entry for ``message_id``."""
    if not 0 <= message_id < len(MESSAGE_CATALOG):
        raise ValueError(f"message_id must be in [0, {len(MESSAGE_CATALOG) - 1}], got {message_id}")
    return MESSAGE_CATALOG[message_id]


def messages_in_category(category: str) -> tuple[HandSignalMessage, ...]:
    """Return all messages belonging to one category."""
    if category not in CATEGORIES:
        raise ValueError(f"unknown category {category!r}; expected one of {CATEGORIES}")
    return tuple(m for m in MESSAGE_CATALOG if m.category == category)


def common_messages() -> tuple[HandSignalMessage, ...]:
    """Return the 20 most common messages shown prominently in the app."""
    return tuple(m for m in MESSAGE_CATALOG if m.is_common)
