"""Message packing: catalog entries <-> packet bits.

A data packet carries 16 information bits (section 3 of the paper), which
is enough for two 8-bit message identifiers -- "users can choose to send
two hand signals in a single packet".  When only one message is sent the
second slot carries the reserved "no message" value 255.
"""

from __future__ import annotations

import numpy as np

from repro.app.messages import MESSAGE_CATALOG, HandSignalMessage, get_message

#: Value of an empty message slot.
EMPTY_SLOT = 255

#: Bits per message slot.
BITS_PER_MESSAGE = 8

#: Message slots per packet.
SLOTS_PER_PACKET = 2


class MessageCodec:
    """Packs catalog message ids into packet payload bits and back."""

    @property
    def payload_bits(self) -> int:
        """Number of payload bits per packet."""
        return BITS_PER_MESSAGE * SLOTS_PER_PACKET

    # ----------------------------------------------------------------- encode
    def encode_ids(self, message_ids: list[int] | tuple[int, ...]) -> np.ndarray:
        """Encode one or two message identifiers into payload bits."""
        ids = list(message_ids)
        if not 1 <= len(ids) <= SLOTS_PER_PACKET:
            raise ValueError(
                f"a packet carries between 1 and {SLOTS_PER_PACKET} messages, got {len(ids)}"
            )
        for message_id in ids:
            if not 0 <= message_id < len(MESSAGE_CATALOG):
                raise ValueError(f"message id {message_id} outside the catalog")
        while len(ids) < SLOTS_PER_PACKET:
            ids.append(EMPTY_SLOT)
        bits = np.zeros(self.payload_bits, dtype=int)
        for slot, message_id in enumerate(ids):
            for bit in range(BITS_PER_MESSAGE):
                bits[slot * BITS_PER_MESSAGE + bit] = (message_id >> (BITS_PER_MESSAGE - 1 - bit)) & 1
        return bits

    def encode_messages(self, messages: list[HandSignalMessage]) -> np.ndarray:
        """Encode catalog entries (rather than raw ids)."""
        return self.encode_ids([m.message_id for m in messages])

    # ----------------------------------------------------------------- decode
    def decode_ids(self, bits: np.ndarray) -> list[int]:
        """Decode payload bits into the carried message identifiers.

        Empty slots (value 255) are dropped; identifiers outside the catalog
        range (a decoding error) are kept so the caller can notice.
        """
        bits = np.asarray(bits, dtype=int).ravel()
        if bits.size != self.payload_bits:
            raise ValueError(f"expected {self.payload_bits} bits, got {bits.size}")
        ids = []
        for slot in range(SLOTS_PER_PACKET):
            value = 0
            for bit in range(BITS_PER_MESSAGE):
                value = (value << 1) | int(bits[slot * BITS_PER_MESSAGE + bit])
            if value != EMPTY_SLOT:
                ids.append(value)
        return ids

    def decode_messages(self, bits: np.ndarray) -> list[HandSignalMessage]:
        """Decode payload bits into catalog entries, skipping invalid ids."""
        return [
            get_message(message_id)
            for message_id in self.decode_ids(bits)
            if 0 <= message_id < len(MESSAGE_CATALOG)
        ]
