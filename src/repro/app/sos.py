"""SoS beacon application: long-range low-rate distress signalling.

The beacon encodes a 6-bit user ID with binary FSK at 5, 10 or 20 bps in
the 1.5-4 kHz band (paper section 3).  At 10 bps the whole beacon takes
0.6 seconds and remains decodable at 100+ metres, which is what matters
for alerting a dive group to an emergency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.channel import UnderwaterAcousticChannel
from repro.core.beacon import FSKBeacon
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class SosReception:
    """Result of listening for an SoS beacon.

    Attributes
    ----------
    user_id:
        The decoded 6-bit user identifier.
    bit_errors:
        Number of bit errors against the transmitted ID (only meaningful in
        simulation, where the ground truth is known).
    mean_confidence_db:
        Average tone-energy margin of the bit decisions.
    """

    user_id: int
    bit_errors: int
    mean_confidence_db: float


class SosBeaconService:
    """Sends and receives SoS beacons over a simulated channel."""

    def __init__(
        self,
        channel: UnderwaterAcousticChannel,
        bit_rate_bps: int = 10,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.channel = channel
        self.beacon = FSKBeacon(bit_rate_bps=bit_rate_bps)
        self._rng = ensure_rng(seed)

    @property
    def beacon_duration_s(self) -> float:
        """Airtime of one 6-bit SoS beacon."""
        return 6 * self.beacon.symbol_duration_s

    def broadcast(self, user_id: int) -> SosReception:
        """Transmit an SoS beacon for ``user_id`` and decode it at the receiver.

        Each broadcast redraws the small-scale channel realization: beacons
        are repeated over seconds, during which swell and swimmer motion
        decorrelate the multipath.
        """
        waveform = self.beacon.encode_sos(user_id)
        self.channel.randomize(self._rng)
        output = self.channel.transmit(waveform, self._rng)
        decoded_id, result = self.beacon.decode_sos(output.samples)
        true_bits = [(user_id >> (5 - i)) & 1 for i in range(6)]
        bit_errors = int(np.count_nonzero(np.asarray(true_bits) != result.bits))
        return SosReception(
            user_id=decoded_id,
            bit_errors=bit_errors,
            mean_confidence_db=float(np.mean(result.confidence)),
        )

    def broadcast_many(self, user_id: int, repetitions: int) -> list[SosReception]:
        """Broadcast the beacon repeatedly (for reliability statistics)."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        return [self.broadcast(user_id) for _ in range(repetitions)]
