"""Application layer: the underwater messaging app and SoS beacons.

The paper's app lets a user pick one of 240 predefined messages
(corresponding to professional divers' hand signals, organized into eight
categories with the 20 most common shown prominently), packs two messages
into one 16-bit packet, and can also emit an SoS beacon carrying a 6-bit
user ID at 5-20 bps for long range.
"""

from repro.app.codec import MessageCodec
from repro.app.messages import (
    CATEGORIES,
    COMMON_MESSAGE_IDS,
    MESSAGE_CATALOG,
    HandSignalMessage,
    messages_in_category,
)
from repro.app.messenger import Messenger, MessageDeliveryReport
from repro.app.sos import SosBeaconService, SosReception

__all__ = [
    "HandSignalMessage",
    "MESSAGE_CATALOG",
    "CATEGORIES",
    "COMMON_MESSAGE_IDS",
    "messages_in_category",
    "MessageCodec",
    "Messenger",
    "MessageDeliveryReport",
    "SosBeaconService",
    "SosReception",
]
