"""High-level messaging API: send hand-signal messages over a link session.

:class:`Messenger` is what the example applications use: it wraps a
:class:`~repro.link.session.LinkSession` (which in turn wraps the modem and
the simulated channels) and exposes "send these messages to my buddy"
semantics with per-message delivery reports and simple retransmission.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.app.codec import MessageCodec
from repro.app.messages import HandSignalMessage, get_message
from repro.link.session import LinkSession, PacketResult
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class MessageDeliveryReport:
    """Outcome of sending one packet worth of messages.

    Attributes
    ----------
    requested:
        The messages the sender asked to transmit.
    delivered:
        The messages the receiver decoded (empty if the packet was lost).
    success:
        Whether every requested message was decoded correctly.
    attempts:
        Number of transmissions used (1 unless retransmission kicked in).
    bitrate_bps:
        Coded bitrate selected for the (last) attempt.
    packet_result:
        Raw link-layer result of the last attempt.
    """

    requested: tuple[HandSignalMessage, ...]
    delivered: tuple[HandSignalMessage, ...]
    success: bool
    attempts: int
    bitrate_bps: float
    packet_result: PacketResult

    @property
    def latency_estimate_s(self) -> float:
        """Rough airtime estimate of the (successful) message transfer."""
        if not np.isfinite(self.bitrate_bps) or self.bitrate_bps <= 0:
            return float("nan")
        return self.packet_result.num_payload_bits / self.bitrate_bps


class Messenger:
    """Sends hand-signal messages between two simulated devices."""

    def __init__(
        self,
        session: LinkSession,
        max_retransmissions: int = 1,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if max_retransmissions < 0:
            raise ValueError("max_retransmissions must be non-negative")
        self.session = session
        self.codec = MessageCodec()
        self.max_retransmissions = int(max_retransmissions)
        self._rng = ensure_rng(seed)
        if session.payload_bits != self.codec.payload_bits:
            raise ValueError(
                "the link session payload size must match the message codec "
                f"({self.codec.payload_bits} bits)"
            )

    def send_message_ids(self, message_ids: list[int]) -> MessageDeliveryReport:
        """Send one packet carrying up to two message identifiers."""
        requested = tuple(get_message(i) for i in message_ids)
        payload = self.codec.encode_ids(message_ids)
        attempts = 0
        result: PacketResult | None = None
        decoded: list[HandSignalMessage] = []
        while attempts <= self.max_retransmissions:
            attempts += 1
            result = self.session.run_packet(payload=payload, rng=self._rng)
            if result.delivered:
                decoded = requested_list = list(requested)
                break
        assert result is not None
        success = result.delivered
        if not success:
            decoded = []
        return MessageDeliveryReport(
            requested=requested,
            delivered=tuple(decoded),
            success=success,
            attempts=attempts,
            bitrate_bps=result.coded_bitrate_bps,
            packet_result=result,
        )

    def send_text(self, text: str) -> MessageDeliveryReport:
        """Send the catalog message whose text matches ``text`` exactly."""
        from repro.app.messages import MESSAGE_CATALOG

        matches = [m for m in MESSAGE_CATALOG if m.text == text]
        if not matches:
            raise ValueError(f"no catalog message with text {text!r}")
        return self.send_message_ids([matches[0].message_id])
