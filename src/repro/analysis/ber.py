"""Theoretical BER references.

Fig. 8 of the paper compares the measured per-subcarrier BER against the
theoretical BPSK curve; Fig. 16 refers to the "4 dB causes about 1 % BER"
point of the same curve.  These helpers provide that reference.
"""

from __future__ import annotations

import numpy as np
from scipy import special


def q_function(x: np.ndarray | float) -> np.ndarray | float:
    """The Gaussian tail probability Q(x)."""
    return 0.5 * special.erfc(np.asarray(x, dtype=float) / np.sqrt(2.0))


def bpsk_ber_theoretical(snr_db: np.ndarray | float) -> np.ndarray | float:
    """Theoretical BPSK bit error rate at a given per-bit SNR (dB).

    ``BER = Q(sqrt(2 * Eb/N0))`` with Eb/N0 taken equal to the
    per-subcarrier SNR, which is how the paper presents its Fig. 8 curve.
    """
    snr_linear = 10.0 ** (np.asarray(snr_db, dtype=float) / 10.0)
    result = q_function(np.sqrt(2.0 * snr_linear))
    if np.isscalar(snr_db):
        return float(result)
    return result


def snr_for_target_ber(target_ber: float) -> float:
    """Return the SNR (dB) at which theoretical BPSK BER equals ``target_ber``.

    Solved by bisection; the paper's 1 % BER reference corresponds to about
    4.3 dB, matching the 4 dB dashed line in Fig. 16.
    """
    if not 0 < target_ber < 0.5:
        raise ValueError("target_ber must be in (0, 0.5)")
    low, high = -10.0, 30.0
    for _ in range(100):
        mid = 0.5 * (low + high)
        if bpsk_ber_theoretical(mid) > target_ber:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)
