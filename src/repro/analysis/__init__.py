"""Analysis helpers used by the benchmark harness and examples."""

from repro.analysis.ber import bpsk_ber_theoretical, q_function, snr_for_target_ber
from repro.analysis.metrics import format_table, per_to_percent

__all__ = [
    "q_function",
    "bpsk_ber_theoretical",
    "snr_for_target_ber",
    "per_to_percent",
    "format_table",
]
