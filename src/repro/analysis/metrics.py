"""Small formatting and metric helpers for reports and benchmarks."""

from __future__ import annotations

import numpy as np


def per_to_percent(per: float) -> str:
    """Format a packet error rate as a percentage string."""
    if not np.isfinite(per):
        return "n/a"
    return f"{100.0 * per:.1f}%"


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a simple fixed-width text table (used by the bench harness)."""
    columns = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        cells = [str(cell).ljust(widths[i]) for i, cell in enumerate(row)]
        lines.append("  ".join(cells))
    return "\n".join(lines)


def geometric_mean(values: list[float] | np.ndarray) -> float:
    """Geometric mean, ignoring non-positive entries."""
    values = np.asarray(values, dtype=float)
    values = values[values > 0]
    if values.size == 0:
        return float("nan")
    return float(np.exp(np.mean(np.log(values))))
