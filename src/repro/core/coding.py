"""The data encoding and decoding pipeline (paper section 2.3).

Transmit direction (:class:`DataEncoder`):

1. rate-2/3 convolutional coding (constraint length 7);
2. interleaving of the coded bits across the selected subcarriers
   (symbol-first fill, one-third-band stride within a symbol);
3. differential BPSK across consecutive OFDM symbols per subcarrier,
   with a known CAZAC training symbol acting both as equalizer training
   and as the differential reference;
4. OFDM modulation restricted to the selected band (bins outside the band
   are zero), fixed per-symbol transmit power, cyclic prefix.

Receive direction (:class:`DataDecoder`):

1. 1-4 kHz FIR band-pass filtering;
2. time-domain MMSE equalization fitted on the training symbol;
3. per-symbol FFT, extraction of the selected band;
4. differential demodulation (soft values from the phase difference of
   consecutive symbols);
5. de-interleaving and Viterbi decoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adaptation import BandSelection
from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.equalizer import EQUALIZER_SOLVERS, MMSEEqualizer
from repro.core.ofdm import OFDMModulator
from repro.dsp.filters import FIRBandpassFilter
from repro.dsp.sequences import zadoff_chu
from repro.fec.convolutional import PuncturedConvolutionalCode
from repro.fec.interleaver import SubcarrierInterleaver

_EPS = 1e-30


@dataclass(frozen=True)
class EncodedPacket:
    """A fully encoded data burst ready for transmission.

    Attributes
    ----------
    waveform:
        Time-domain samples: training symbol followed by the data symbols
        (each with its cyclic prefix).
    band:
        The band selection the packet was encoded for.
    num_payload_bits:
        Number of information bits carried.
    num_coded_bits:
        Number of coded bits after the convolutional code.
    num_data_symbols:
        Number of OFDM data symbols (excluding the training symbol).
    """

    waveform: np.ndarray
    band: BandSelection
    num_payload_bits: int
    num_coded_bits: int
    num_data_symbols: int

    @property
    def num_symbols_total(self) -> int:
        """Total OFDM symbols including the training symbol."""
        return self.num_data_symbols + 1


@dataclass(frozen=True)
class DecodedPacket:
    """Result of decoding a data burst.

    Attributes
    ----------
    bits:
        The decoded payload bits.
    soft_bits:
        The de-interleaved soft coded bits fed to the Viterbi decoder
        (useful for diagnostics and the uncoded-BER evaluations).
    hard_coded_bits:
        Hard decisions on the coded bits before Viterbi decoding.
    """

    bits: np.ndarray
    soft_bits: np.ndarray
    hard_coded_bits: np.ndarray


class DataEncoder:
    """Encodes payload bits into an OFDM burst inside a selected band."""

    def __init__(
        self,
        ofdm_config: OFDMConfig | None = None,
        protocol_config: ProtocolConfig | None = None,
        use_differential: bool = True,
        use_interleaving: bool = True,
    ) -> None:
        self.ofdm_config = ofdm_config or OFDMConfig()
        self.protocol_config = protocol_config or ProtocolConfig()
        self.use_differential = bool(use_differential)
        self.use_interleaving = bool(use_interleaving)
        self._modulator = OFDMModulator(self.ofdm_config)
        self._code = PuncturedConvolutionalCode(
            constraint_length=self.protocol_config.constraint_length
        )
        # Per-band caches: the training waveform and its CAZAC values are
        # deterministic for a band, and band selections repeat heavily
        # across the packets of a session.  Entries are read-only arrays.
        self._training_values_cache: dict[int, np.ndarray] = {}
        self._training_symbol_cache: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------ helpers
    def training_bin_values(self, band: BandSelection) -> np.ndarray:
        """CAZAC values used for the training symbol inside the band."""
        cached = self._training_values_cache.get(band.num_bins)
        if cached is None:
            cached = zadoff_chu(band.num_bins, root=3)
            cached.setflags(write=False)
            self._training_values_cache[band.num_bins] = cached
        return cached

    def training_symbol(self, band: BandSelection) -> np.ndarray:
        """Return the known training symbol waveform for a band."""
        key = (band.start_bin, band.end_bin)
        cached = self._training_symbol_cache.get(key)
        if cached is None:
            bins = band.absolute_bins()
            cached = self._modulator.modulate(
                self.training_bin_values(band), bins, add_cyclic_prefix=True
            )
            cached.setflags(write=False)
            self._training_symbol_cache[key] = cached
        return cached

    def num_data_symbols(self, num_payload_bits: int, band: BandSelection) -> int:
        """Number of OFDM data symbols needed for a payload in a band."""
        coded = self._code.coded_length(num_payload_bits)
        interleaver = SubcarrierInterleaver(band.num_bins)
        return max(1, interleaver.num_symbols(coded))

    # ------------------------------------------------------------------ encode
    def encode(self, payload_bits: np.ndarray, band: BandSelection) -> EncodedPacket:
        """Encode ``payload_bits`` for transmission in ``band``."""
        payload_bits = np.asarray(payload_bits, dtype=int).ravel()
        if payload_bits.size == 0:
            raise ValueError("payload must contain at least one bit")
        if not np.all((payload_bits == 0) | (payload_bits == 1)):
            raise ValueError("payload bits must be 0 or 1")
        coded_bits = self._code.encode(payload_bits)
        interleaver = SubcarrierInterleaver(band.num_bins)
        if self.use_interleaving:
            grid = interleaver.interleave(coded_bits)
        else:
            n_symbols = interleaver.num_symbols(coded_bits.size)
            grid = np.zeros((n_symbols, band.num_bins), dtype=int)
            flat = grid.reshape(-1)
            flat[: coded_bits.size] = coded_bits
            grid = flat.reshape(n_symbols, band.num_bins)

        bins = band.absolute_bins()
        reference = self.training_bin_values(band)
        antipodal = 1.0 - 2.0 * grid.astype(float)
        if self.use_differential:
            # Differential BPSK: symbol k carries the running sign product,
            # so the per-symbol recurrence collapses to one cumulative
            # product (the signs are exactly +/-1, keeping this exact).
            values = reference[None, :] * np.cumprod(antipodal, axis=0)
        else:
            values = reference[None, :] * antipodal
        data_symbols = self._modulator.modulate_many(values, bins, add_cyclic_prefix=True)
        waveform = np.concatenate([self.training_symbol(band), data_symbols.ravel()])
        return EncodedPacket(
            waveform=waveform,
            band=band,
            num_payload_bits=int(payload_bits.size),
            num_coded_bits=int(coded_bits.size),
            num_data_symbols=int(grid.shape[0]),
        )


class DataDecoder:
    """Decodes an OFDM burst produced by :class:`DataEncoder`."""

    def __init__(
        self,
        ofdm_config: OFDMConfig | None = None,
        protocol_config: ProtocolConfig | None = None,
        use_differential: bool = True,
        use_interleaving: bool = True,
        use_equalizer: bool = True,
        equalizer_num_taps: int | None = None,
        equalizer_solver: str = "levinson",
    ) -> None:
        self.ofdm_config = ofdm_config or OFDMConfig()
        self.protocol_config = protocol_config or ProtocolConfig()
        self.use_differential = bool(use_differential)
        self.use_interleaving = bool(use_interleaving)
        self.use_equalizer = bool(use_equalizer)
        if equalizer_solver not in EQUALIZER_SOLVERS:
            raise ValueError(
                f"equalizer_solver must be one of {EQUALIZER_SOLVERS}, "
                f"got {equalizer_solver!r}"
            )
        self.equalizer_solver = str(equalizer_solver)
        self.equalizer_num_taps = int(
            equalizer_num_taps if equalizer_num_taps is not None
            else self.protocol_config.equalizer_num_taps
        )
        self._modulator = OFDMModulator(self.ofdm_config)
        self._code = PuncturedConvolutionalCode(
            constraint_length=self.protocol_config.constraint_length
        )
        self._encoder = DataEncoder(
            self.ofdm_config,
            self.protocol_config,
            use_differential=use_differential,
            use_interleaving=use_interleaving,
        )
        self._bandpass = FIRBandpassFilter(
            self.ofdm_config.band_low_hz,
            self.ofdm_config.band_high_hz,
            self.ofdm_config.sample_rate_hz,
        )

    def expected_length(self, num_payload_bits: int, band: BandSelection) -> int:
        """Number of samples the data burst occupies for a given payload."""
        symbols = self._encoder.num_data_symbols(num_payload_bits, band) + 1
        return symbols * self.ofdm_config.extended_symbol_length

    def decode(
        self,
        received: np.ndarray,
        band: BandSelection,
        num_payload_bits: int,
        apply_bandpass: bool = True,
    ) -> DecodedPacket:
        """Decode a received burst starting at sample 0 of ``received``.

        ``received`` must begin at the training symbol (the caller aligns it
        using the preamble synchronization plus the known silence interval).
        """
        received = np.asarray(received, dtype=float).ravel()
        needed = self.expected_length(num_payload_bits, band)
        if received.size < needed:
            raise ValueError(f"received burst too short: {received.size} < {needed}")
        burst = received[:needed]
        if apply_bandpass:
            burst = self._bandpass.apply(burst)

        extended = self.ofdm_config.extended_symbol_length
        num_data_symbols = self._encoder.num_data_symbols(num_payload_bits, band)
        reference_training = self._encoder.training_symbol(band)

        if self.use_equalizer:
            equalizer = MMSEEqualizer(
                num_taps=min(self.equalizer_num_taps, extended - 1),
                solver=self.equalizer_solver,
            )
            equalizer.fit(burst[:extended], reference_training)
            burst = equalizer.apply(burst)

        bins = band.absolute_bins()
        spectra = self._modulator.demodulate_many(burst, num_data_symbols + 1, bins)

        coded_bits_expected = self._code.coded_length(num_payload_bits)
        interleaver = SubcarrierInterleaver(band.num_bins)

        if self.use_differential:
            reference = spectra[:-1]
            current = spectra[1:]
        else:
            # Non-differential: compare against the known training values
            # scaled by the per-symbol channel estimated from the training
            # symbol itself.
            training_values = self._encoder.training_bin_values(band)
            channel = spectra[0] / np.where(np.abs(training_values) > 0, training_values, 1.0)
            reference = np.broadcast_to(channel * training_values, spectra[1:].shape)
            current = spectra[1:]
        correlation = np.real(current * np.conj(reference))
        magnitude = np.abs(current) * np.abs(reference)
        soft_grid = -correlation / np.maximum(magnitude, _EPS)

        if self.use_interleaving:
            soft_bits = interleaver.deinterleave(soft_grid, coded_bits_expected)
        else:
            soft_bits = soft_grid.reshape(-1)[:coded_bits_expected]
        hard_coded = (soft_bits > 0).astype(int)
        decoded = self._code.decode(soft_bits, num_data_bits=num_payload_bits)
        return DecodedPacket(bits=decoded, soft_bits=soft_bits, hard_coded_bits=hard_coded)

    def coded_reference_bits(self, payload_bits: np.ndarray) -> np.ndarray:
        """Return the coded bits for a payload (for uncoded-BER accounting)."""
        return self._code.encode(np.asarray(payload_bits, dtype=int).ravel())
