"""Preamble generation, detection and symbol synchronization.

The preamble serves three purposes (paper section 2.2.1): packet detection,
symbol synchronization and channel estimation.  It consists of eight
identical OFDM symbols whose data subcarriers carry a CAZAC (Zadoff-Chu)
sequence, with each symbol multiplied by the PN sign pattern
``[-1, 1, 1, 1, 1, 1, -1, 1]``.

Detection is two-stage:

1. *Coarse*: normalized cross-correlation of the received audio against the
   known preamble waveform; peaks above a low threshold become candidates.
2. *Fine*: the normalized sliding correlation of the candidate window.  The
   window is split into eight segments, PN signs are removed, neighbouring
   segments are correlated and the sum is normalized by the window energy.
   A genuine preamble gives a metric near ``SNR / (SNR + 1)`` regardless of
   absolute level, while impulsive noise stays small.  The metric peak also
   gives the fine timing used to synchronize all later OFDM symbols.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.ofdm import OFDMModulator
from repro.dsp.correlation import (
    TemplateCorrelator,
    sliding_correlation_curve,
)
from repro.dsp.sequences import zadoff_chu


@dataclass(frozen=True)
class PreambleDetection:
    """Result of a preamble search.

    Attributes
    ----------
    detected:
        Whether a preamble was found.
    start_index:
        Sample index of the detected preamble start (-1 when not found).
    coarse_metric:
        Peak normalized cross-correlation value of the coarse stage.
    fine_metric:
        Peak normalized sliding-correlation value of the fine stage.
    """

    detected: bool
    start_index: int
    coarse_metric: float
    fine_metric: float


class PreambleGenerator:
    """Builds the CAZAC preamble waveform and its reference symbols."""

    def __init__(
        self,
        ofdm_config: OFDMConfig | None = None,
        protocol_config: ProtocolConfig | None = None,
        zc_root: int = 1,
    ) -> None:
        self.ofdm_config = ofdm_config or OFDMConfig()
        self.protocol_config = protocol_config or ProtocolConfig()
        self.zc_root = int(zc_root)
        self._modulator = OFDMModulator(self.ofdm_config)
        self._bin_values = zadoff_chu(self.ofdm_config.num_data_bins, root=self.zc_root)
        self._base_symbol_cache: np.ndarray | None = None
        self._waveform_cache: np.ndarray | None = None

    @property
    def reference_bin_values(self) -> np.ndarray:
        """CAZAC values placed on the data subcarriers of each preamble symbol."""
        return self._bin_values.copy()

    @property
    def num_symbols(self) -> int:
        """Number of OFDM symbols in the preamble."""
        return self.protocol_config.num_preamble_symbols

    @property
    def symbol_length(self) -> int:
        """Length of one preamble symbol including its cyclic prefix."""
        return self.ofdm_config.extended_symbol_length

    @property
    def total_length(self) -> int:
        """Total length of the preamble waveform in samples."""
        return self.num_symbols * self.symbol_length

    @property
    def duration_s(self) -> float:
        """Duration of the preamble in seconds."""
        return self.total_length / self.ofdm_config.sample_rate_hz

    def base_symbol(self) -> np.ndarray:
        """Return one un-signed preamble symbol (with cyclic prefix).

        The symbol is deterministic for a generator, so it is computed once
        and returned as a cached read-only array: the detection and packet
        loops call this per packet and must not pay a fresh OFDM modulation
        (or an allocation) every time.
        """
        if self._base_symbol_cache is None:
            symbol = self._modulator.modulate(
                self._bin_values, self.ofdm_config.data_bins, add_cyclic_prefix=True
            )
            symbol.setflags(write=False)
            self._base_symbol_cache = symbol
        return self._base_symbol_cache

    def waveform(self) -> np.ndarray:
        """Return the full preamble waveform (eight signed symbols).

        Cached and read-only, like :meth:`base_symbol`; the perf suite
        asserts the no-per-call-allocation property.
        """
        if self._waveform_cache is None:
            base = self.base_symbol()
            signs = self.protocol_config.pn_signs_array
            waveform = np.concatenate([sign * base for sign in signs])
            waveform.setflags(write=False)
            self._waveform_cache = waveform
        return self._waveform_cache


class PreambleDetector:
    """Two-stage preamble detector and synchronizer."""

    def __init__(self, generator: PreambleGenerator) -> None:
        self.generator = generator
        self.protocol_config = generator.protocol_config
        self.ofdm_config = generator.ofdm_config
        self._template = generator.waveform()
        # Conjugate spectrum of the template, cached for the overlap-save
        # coarse search (shared across every packet of a session).
        self._correlator = TemplateCorrelator(self._template)

    def coarse_candidates(self, received: np.ndarray, max_candidates: int = 4) -> list[tuple[int, float]]:
        """Return up to ``max_candidates`` coarse-stage candidate offsets.

        Each candidate is a ``(offset, metric)`` pair where the metric is the
        normalized cross-correlation against the preamble template.  Only
        above-threshold offsets are sorted (instead of the full correlation
        buffer); the resulting candidate list is identical to scanning all
        offsets in descending metric order.
        """
        received = np.asarray(received, dtype=float)
        if received.size < self._template.size:
            return []
        correlation = self._correlator.correlate(received)
        threshold = self.protocol_config.coarse_detection_threshold
        above = np.flatnonzero(correlation >= threshold)
        if above.size == 0:
            return []
        order = above[np.argsort(correlation[above])[::-1]]
        candidates: list[tuple[int, float]] = []
        min_separation = self.ofdm_config.symbol_length
        for index in order:
            if len(candidates) >= max_candidates:
                break
            if all(abs(int(index) - c[0]) > min_separation for c in candidates):
                candidates.append((int(index), float(correlation[index])))
        return candidates

    def detect(self, received: np.ndarray) -> PreambleDetection:
        """Search ``received`` for the preamble and return the best detection."""
        candidates = self.coarse_candidates(received)
        if not candidates:
            return PreambleDetection(False, -1, 0.0, 0.0)
        segment_length = self.generator.symbol_length
        signs = self.protocol_config.pn_signs_array
        best = PreambleDetection(False, -1, 0.0, 0.0)
        half_symbol = self.ofdm_config.symbol_length // 2
        for offset, coarse_metric in candidates:
            start = offset - half_symbol
            stop = offset + half_symbol
            indices, metric = sliding_correlation_curve(
                received,
                start,
                stop,
                segment_length,
                signs,
                step=self.protocol_config.sliding_correlation_step,
            )
            if indices.size == 0:
                continue
            peak = int(np.argmax(metric))
            fine_metric = float(metric[peak])
            if fine_metric > best.fine_metric:
                detected = fine_metric >= self.protocol_config.sliding_correlation_threshold
                best = PreambleDetection(detected, int(indices[peak]), coarse_metric, fine_metric)
        return best

    def extract_symbols(self, received: np.ndarray, start_index: int) -> np.ndarray:
        """Return the received preamble as (num_symbols, symbol_length) rows.

        The PN signs are removed and the cyclic prefixes stripped, so the
        rows can be FFT'd directly for channel estimation.
        """
        received = np.asarray(received, dtype=float)
        step = self.generator.symbol_length
        total = self.generator.total_length
        if start_index < 0 or start_index + total > received.size:
            raise ValueError("preamble does not fit in the received buffer at that offset")
        signs = self.protocol_config.pn_signs_array
        prefix = self.ofdm_config.cyclic_prefix_length
        length = self.ofdm_config.symbol_length
        frames = received[start_index:start_index + total].reshape(
            self.generator.num_symbols, step
        )[:, prefix:prefix + length]
        return frames * signs[:, None]
