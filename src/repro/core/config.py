"""Configuration objects for the AquaApp modem and protocol.

The numeric defaults follow the paper exactly:

* 48 kHz audio sampling rate, 960-sample (20 ms) OFDM symbols, 50 Hz
  subcarrier spacing, 67-sample cyclic prefix (6.9 % overhead);
* a 1-4 kHz communication band giving 60 usable data subcarriers;
* a preamble of eight CAZAC-filled OFDM symbols with the PN sign pattern
  ``[-1, 1, 1, 1, 1, 1, -1, 1]``;
* band-adaptation SNR threshold of 7 dB and conservative factor 0.8;
* a rate-2/3, constraint-length-7 convolutional code;
* a time-domain MMSE equalizer with a 480-sample channel length.

Alternative subcarrier spacings (25 Hz / 10 Hz, used by the Fig. 17
experiment) are obtained with :meth:`OFDMConfig.with_subcarrier_spacing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

import numpy as np

from repro.utils.validation import require_positive


@dataclass(frozen=True)
class OFDMConfig:
    """Physical-layer OFDM parameters.

    Attributes
    ----------
    sample_rate_hz:
        Audio sampling rate of the mobile device.
    symbol_length:
        OFDM symbol length in samples (FFT size).
    cyclic_prefix_length:
        Cyclic prefix length in samples.
    band_low_hz, band_high_hz:
        Edges of the communication band.  Subcarriers whose centre
        frequency ``f`` satisfies ``band_low_hz <= f < band_high_hz`` are
        usable for data.
    """

    sample_rate_hz: float = 48000.0
    symbol_length: int = 960
    cyclic_prefix_length: int = 67
    band_low_hz: float = 1000.0
    band_high_hz: float = 4000.0

    def __post_init__(self) -> None:
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        require_positive(self.symbol_length, "symbol_length")
        if self.cyclic_prefix_length < 0:
            raise ValueError("cyclic_prefix_length must be non-negative")
        if not 0 < self.band_low_hz < self.band_high_hz <= self.sample_rate_hz / 2:
            raise ValueError(
                "band edges must satisfy 0 < low < high <= Nyquist, got "
                f"({self.band_low_hz}, {self.band_high_hz})"
            )
        if self.num_data_bins < 1:
            raise ValueError("the configured band contains no usable subcarriers")

    # ------------------------------------------------------------ derived
    @property
    def subcarrier_spacing_hz(self) -> float:
        """Spacing between adjacent OFDM subcarriers in Hz."""
        return self.sample_rate_hz / self.symbol_length

    @property
    def symbol_duration_s(self) -> float:
        """Duration of the OFDM symbol (without cyclic prefix) in seconds."""
        return self.symbol_length / self.sample_rate_hz

    @property
    def extended_symbol_length(self) -> int:
        """Symbol length including the cyclic prefix, in samples."""
        return self.symbol_length + self.cyclic_prefix_length

    @property
    def extended_symbol_duration_s(self) -> float:
        """Duration of the OFDM symbol including the cyclic prefix."""
        return self.extended_symbol_length / self.sample_rate_hz

    # cached_property stores straight into __dict__, which bypasses the
    # frozen-dataclass setattr guard -- these derived values are immutable
    # functions of the (frozen) fields and are read on every packet.
    @cached_property
    def first_data_bin(self) -> int:
        """Index of the first usable data subcarrier."""
        return int(np.ceil(self.band_low_hz / self.subcarrier_spacing_hz))

    @cached_property
    def last_data_bin(self) -> int:
        """Index of the last usable data subcarrier (inclusive)."""
        last = int(np.ceil(self.band_high_hz / self.subcarrier_spacing_hz)) - 1
        return max(last, self.first_data_bin)

    @property
    def num_data_bins(self) -> int:
        """Number of usable data subcarriers in the communication band."""
        return self.last_data_bin - self.first_data_bin + 1

    @cached_property
    def data_bins(self) -> np.ndarray:
        """Array of usable data subcarrier indices (read-only)."""
        bins = np.arange(self.first_data_bin, self.last_data_bin + 1)
        bins.setflags(write=False)
        return bins

    @property
    def data_bin_frequencies_hz(self) -> np.ndarray:
        """Centre frequencies of the usable data subcarriers in Hz."""
        return self.data_bins * self.subcarrier_spacing_hz

    def bin_frequency_hz(self, bin_index: int) -> float:
        """Return the centre frequency of an absolute subcarrier index."""
        return float(bin_index * self.subcarrier_spacing_hz)

    def frequency_to_bin(self, frequency_hz: float) -> int:
        """Return the subcarrier index nearest to ``frequency_hz``."""
        return int(round(frequency_hz / self.subcarrier_spacing_hz))

    # --------------------------------------------------------------- variants
    def with_subcarrier_spacing(self, spacing_hz: float) -> "OFDMConfig":
        """Return a copy with a different subcarrier spacing.

        The symbol length is recomputed so the sample rate is unchanged and
        the cyclic prefix keeps the same fractional overhead as the default
        configuration (67 / 960 samples, roughly 7 %).
        """
        require_positive(spacing_hz, "spacing_hz")
        symbol_length = int(round(self.sample_rate_hz / spacing_hz))
        if symbol_length < 8:
            raise ValueError("subcarrier spacing too large for the sample rate")
        prefix = int(round(symbol_length * 67.0 / 960.0))
        return replace(
            self, symbol_length=symbol_length, cyclic_prefix_length=prefix
        )

    def with_band(self, low_hz: float, high_hz: float) -> "OFDMConfig":
        """Return a copy with a different communication band."""
        return replace(self, band_low_hz=low_hz, band_high_hz=high_hz)


@dataclass(frozen=True)
class ProtocolConfig:
    """Protocol-level parameters for the post-preamble feedback scheme.

    Attributes
    ----------
    num_preamble_symbols:
        Number of repeated OFDM symbols in the preamble.
    preamble_pn_signs:
        Sign pattern applied to the preamble symbols.
    snr_threshold_db:
        Band-adaptation SNR threshold (epsilon, 7 dB in the paper).
    conservative_lambda:
        Band-adaptation conservative factor (lambda, 0.8 in the paper).
    coarse_detection_threshold:
        Normalized cross-correlation threshold for the coarse detector.
    sliding_correlation_threshold:
        Normalized sliding-correlation threshold for the fine detector.
        The paper quotes 0.6 (with impulsive noise staying below 0.2); the
        default here is 0.55 because the simulated 30 m channel sits at a
        slightly lower in-band SNR than the measured one and the metric is
        approximately ``SNR / (SNR + 1)``.  Benchmarks that study the
        detector sweep this value explicitly.
    sliding_correlation_step:
        Step size in samples for the fine detector.
    equalizer_num_taps:
        Length of the time-domain MMSE equalizer (the "channel length L of
        480 samples" in the paper).
    payload_bits:
        Number of data bits per packet (16 in the messaging app).
    feedback_search_step:
        Step in samples of the sliding FFT used to locate the feedback
        symbol at the original sender.
    ack_dominance_threshold:
        Minimum fraction of the in-band energy the ACK tone must carry for
        a received single-tone symbol to count as an acknowledgement.
        Noise spreads energy over all 60 data bins, so a genuine ACK
        dominates its bin; 0.2 rejects noise-only symbols while tolerating
        frequency-selective fading of the tone itself.
    carrier_sense_interval_s:
        How often the MAC layer measures in-band energy (80 ms).
    max_range_m:
        Maximum operating range assumed when bounding the feedback search
        window (30 m in the paper).
    """

    num_preamble_symbols: int = 8
    preamble_pn_signs: tuple[int, ...] = (-1, 1, 1, 1, 1, 1, -1, 1)
    snr_threshold_db: float = 7.0
    conservative_lambda: float = 0.8
    coarse_detection_threshold: float = 0.15
    sliding_correlation_threshold: float = 0.55
    sliding_correlation_step: int = 8
    equalizer_num_taps: int = 480
    payload_bits: int = 16
    feedback_search_step: int = 16
    ack_dominance_threshold: float = 0.2
    carrier_sense_interval_s: float = 0.08
    max_range_m: float = 30.0
    code_rate: float = 2.0 / 3.0
    constraint_length: int = 7

    def __post_init__(self) -> None:
        if self.num_preamble_symbols != len(self.preamble_pn_signs):
            raise ValueError(
                "preamble_pn_signs must have num_preamble_symbols entries"
            )
        if not 0 < self.conservative_lambda <= 1:
            raise ValueError("conservative_lambda must be in (0, 1]")
        if self.snr_threshold_db < 0:
            raise ValueError("snr_threshold_db must be non-negative")
        require_positive(self.equalizer_num_taps, "equalizer_num_taps")
        require_positive(self.payload_bits, "payload_bits")
        if not 0 < self.sliding_correlation_threshold < 1:
            raise ValueError("sliding_correlation_threshold must be in (0, 1)")
        if not 0 < self.ack_dominance_threshold < 1:
            raise ValueError("ack_dominance_threshold must be in (0, 1)")

    @property
    def pn_signs_array(self) -> np.ndarray:
        """Preamble sign pattern as a float array."""
        return np.array(self.preamble_pn_signs, dtype=float)


#: Default configurations matching the paper.
DEFAULT_OFDM_CONFIG = OFDMConfig()
DEFAULT_PROTOCOL_CONFIG = ProtocolConfig()
