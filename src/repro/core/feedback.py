"""Feedback symbol encoding and decoding.

The receiver (Bob) reports the selected band back to the transmitter
(Alice) in a single OFDM symbol: all transmit power is placed on the two
subcarriers corresponding to ``f_begin`` and ``f_end`` (section 2.2.3).
Because the whole symbol energy is concentrated on two tones, Alice can
decode the feedback reliably even though she has no channel estimate for
the backward path: she slides an FFT window across the expected arrival
interval, finds the offset with the most in-band energy and picks the two
strongest subcarriers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.physics import SOUND_SPEED_M_S
from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.ofdm import OFDMModulator


@dataclass(frozen=True)
class FeedbackDecodeResult:
    """Outcome of searching for and decoding a feedback symbol.

    Attributes
    ----------
    found:
        Whether a plausible feedback symbol was located.
    start_bin, end_bin:
        Decoded band edges as absolute subcarrier indices.
    offset:
        Sample offset at which the symbol was found.
    peak_power_ratio:
        Ratio of the energy in the two selected bins to the total in-band
        energy at the chosen offset; a quality indicator.
    """

    found: bool
    start_bin: int
    end_bin: int
    offset: int
    peak_power_ratio: float


class FeedbackCodec:
    """Encodes and decodes the two-tone band feedback symbol."""

    def __init__(
        self,
        ofdm_config: OFDMConfig | None = None,
        protocol_config: ProtocolConfig | None = None,
    ) -> None:
        self.ofdm_config = ofdm_config or OFDMConfig()
        self.protocol_config = protocol_config or ProtocolConfig()
        self._modulator = OFDMModulator(self.ofdm_config)
        # Band selections repeat across a session's packets; the two-tone
        # symbol for a band is deterministic, so modulate it once.
        self._symbol_cache: dict[tuple[int, int], np.ndarray] = {}

    # ----------------------------------------------------------------- encode
    def encode(self, start_bin: int, end_bin: int) -> np.ndarray:
        """Return the feedback OFDM symbol for a selected band.

        Both ``start_bin`` and ``end_bin`` are absolute subcarrier indices;
        they may be equal for a single-bin band, in which case the entire
        power goes onto that one tone.
        """
        config = self.ofdm_config
        if start_bin > end_bin:
            start_bin, end_bin = end_bin, start_bin
        if start_bin < config.first_data_bin or end_bin > config.last_data_bin:
            raise ValueError(
                f"feedback bins [{start_bin}, {end_bin}] outside the data band"
            )
        cached = self._symbol_cache.get((start_bin, end_bin))
        if cached is not None:
            return cached
        if start_bin == end_bin:
            bins = np.array([start_bin])
            values = np.array([1.0 + 0.0j])
        else:
            bins = np.array([start_bin, end_bin])
            values = np.array([1.0 + 0.0j, 1.0 + 0.0j])
        symbol = self._modulator.modulate(values, bins, add_cyclic_prefix=True)
        symbol.setflags(write=False)
        self._symbol_cache[(start_bin, end_bin)] = symbol
        return symbol

    # ----------------------------------------------------------------- decode
    def decode(
        self,
        received: np.ndarray,
        search_start: int = 0,
        search_stop: int | None = None,
    ) -> FeedbackDecodeResult:
        """Locate and decode the feedback symbol within ``received``.

        Parameters
        ----------
        received:
            Audio captured by the original transmitter after it finished
            sending the preamble (it stays silent while listening).
        search_start, search_stop:
            Sample range of candidate symbol start offsets.  The default
            searches up to the maximum round-trip time for the protocol's
            ``max_range_m`` plus one symbol, as the paper describes.
        """
        config = self.ofdm_config
        received = np.asarray(received, dtype=float)
        window = config.symbol_length
        if search_stop is None:
            max_round_trip_s = 2.0 * self.protocol_config.max_range_m / SOUND_SPEED_M_S
            search_stop = int(max_round_trip_s * config.sample_rate_hz) + config.extended_symbol_length
        search_stop = min(int(search_stop), received.size - window)
        if search_stop < search_start:
            return FeedbackDecodeResult(False, -1, -1, -1, 0.0)

        step = max(1, int(self.protocol_config.feedback_search_step))
        offsets = np.arange(int(search_start), search_stop + 1, step)
        data_bins = config.data_bins
        # Two-pass search.  The first pass finds how much two-tone energy any
        # window captures; the second pass restricts attention to windows that
        # capture a substantial fraction of it and, among those, picks the one
        # whose energy is *most concentrated* in its two strongest bins.  That
        # window is the one best aligned with the OFDM symbol (minimal
        # spectral leakage), which matters when the two tones arrive with very
        # different strengths because of frequency-selective fading.
        #
        # All candidate windows are transformed with one batched rFFT and the
        # per-window tone picking runs vectorized; the selection is identical
        # to scanning the offsets one at a time.
        frames = np.lib.stride_tricks.sliding_window_view(received, window)[offsets]
        spectra = np.abs(np.fft.rfft(frames, axis=1)[:, data_bins]) ** 2
        energies = spectra.sum(axis=1)
        valid = energies > 0.0
        if not np.any(valid):
            return FeedbackDecodeResult(False, -1, -1, -1, 0.0)
        spectra = spectra[valid]
        energies = energies[valid]
        offsets = offsets[valid]
        firsts, seconds = self._top_two_tones_batch(spectra)
        rows = np.arange(spectra.shape[0])
        scores = spectra[rows, firsts] + spectra[rows, seconds]
        max_score = float(scores.max())
        if max_score <= 0.0:
            return FeedbackDecodeResult(False, -1, -1, -1, 0.0)
        ratios = scores / energies
        strong = np.flatnonzero(scores >= 0.5 * max_score)
        best = int(strong[np.argmax(ratios[strong])])
        best_offset = int(offsets[best])
        first = int(firsts[best])
        second = int(seconds[best])
        best_ratio = float(ratios[best])

        low, high = sorted((first, second))
        start_bin = int(data_bins[low])
        end_bin = int(data_bins[high])
        # A genuine two-tone symbol concentrates most in-band energy in the
        # two selected bins (plus a little leakage); random noise does not.
        found = best_ratio > 0.2
        return FeedbackDecodeResult(found, start_bin, end_bin, best_offset, best_ratio)

    @staticmethod
    def _top_two_tones(spectrum: np.ndarray) -> tuple[int, int]:
        """Return the indices of the two strongest, non-adjacent tones.

        The bin next to the strongest tone is excluded when picking the
        second tone, because a slight symbol-timing offset leaks energy of a
        strong tone into its immediate neighbours and that leakage can
        otherwise outweigh a genuinely transmitted tone sitting in a fade.
        A second tone more than ~26 dB below the first is treated as absent,
        which is how a single-bin band (one transmitted tone) is recognized.
        """
        first = int(np.argmax(spectrum))
        masked = spectrum.copy()
        low = max(0, first - 1)
        masked[low:first + 2] = -np.inf
        if np.all(~np.isfinite(masked)):
            return first, first
        second = int(np.argmax(masked))
        if spectrum[second] < 0.0025 * spectrum[first]:
            return first, first
        return first, second

    @staticmethod
    def _top_two_tones_batch(spectra: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_top_two_tones` over rows of ``spectra``."""
        num_rows, num_bins = spectra.shape
        rows = np.arange(num_rows)
        firsts = np.argmax(spectra, axis=1)
        masked = spectra.copy()
        masked[rows, firsts] = -np.inf
        masked[rows, np.maximum(firsts - 1, 0)] = -np.inf
        masked[rows, np.minimum(firsts + 1, num_bins - 1)] = -np.inf
        seconds = np.argmax(masked, axis=1)
        all_masked = ~np.isfinite(masked[rows, seconds])
        too_weak = spectra[rows, seconds] < 0.0025 * spectra[rows, firsts]
        seconds = np.where(all_masked | too_weak, firsts, seconds)
        return firsts, seconds
