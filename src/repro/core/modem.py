"""The :class:`AquaModem`: the public entry point to the modem.

An :class:`AquaModem` bundles the preamble generator/detector, SNR
estimator, band-adaptation algorithm, feedback codec, tone codec and the
data encoder/decoder behind one object so that application code (and the
link-layer simulator) can drive a packet exchange with a handful of calls:

Transmitter (Alice)                      Receiver (Bob)
-------------------                      --------------
``build_preamble_and_header(bob_id)`` →  ``detect_preamble`` /
                                         ``estimate_snr`` /
                                         ``select_band``
``decode_feedback``                   ←  ``build_feedback``
``encode_data(bits, band)``           →  ``decode_data``
``decode_ack``                        ←  ``build_ack``

The modem is stateless between calls; every method takes and returns plain
arrays and small dataclasses, which keeps it easy to test and to run many
independent simulated exchanges in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adaptation import BandSelection, select_frequency_band, selection_from_bins
from repro.core.coding import DataDecoder, DataEncoder, DecodedPacket, EncodedPacket
from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.feedback import FeedbackCodec, FeedbackDecodeResult
from repro.core.preamble import PreambleDetection, PreambleDetector, PreambleGenerator
from repro.core.rates import bitrate_for_selection
from repro.core.snr import ChannelEstimate, estimate_channel_and_snr
from repro.core.tones import ToneCodec, ToneDecodeResult
from repro.dsp.filters import FIRBandpassFilter


@dataclass(frozen=True)
class PreambleHeader:
    """The transmitted preamble plus receiver-ID header symbol.

    Attributes
    ----------
    waveform:
        Preamble followed by the ID symbol, ready for transmission.
    preamble_length:
        Number of samples belonging to the preamble.
    receiver_id:
        Address the header carries.
    """

    waveform: np.ndarray
    preamble_length: int
    receiver_id: int


class AquaModem:
    """Software acoustic modem for underwater messaging on mobile devices."""

    def __init__(
        self,
        ofdm_config: OFDMConfig | None = None,
        protocol_config: ProtocolConfig | None = None,
        use_differential: bool = True,
        use_interleaving: bool = True,
        use_equalizer: bool = True,
        equalizer_num_taps: int | None = None,
        equalizer_solver: str = "levinson",
    ) -> None:
        self.ofdm_config = ofdm_config or OFDMConfig()
        self.protocol_config = protocol_config or ProtocolConfig()
        self.preamble_generator = PreambleGenerator(self.ofdm_config, self.protocol_config)
        self.preamble_detector = PreambleDetector(self.preamble_generator)
        self.feedback_codec = FeedbackCodec(self.ofdm_config, self.protocol_config)
        self.tone_codec = ToneCodec(self.ofdm_config)
        self.encoder = DataEncoder(
            self.ofdm_config,
            self.protocol_config,
            use_differential=use_differential,
            use_interleaving=use_interleaving,
        )
        self.decoder = DataDecoder(
            self.ofdm_config,
            self.protocol_config,
            use_differential=use_differential,
            use_interleaving=use_interleaving,
            use_equalizer=use_equalizer,
            equalizer_num_taps=equalizer_num_taps,
            equalizer_solver=equalizer_solver,
        )
        self.bandpass = FIRBandpassFilter(
            self.ofdm_config.band_low_hz,
            self.ofdm_config.band_high_hz,
            self.ofdm_config.sample_rate_hz,
        )

    # --------------------------------------------------------------- transmit
    def build_preamble_and_header(self, receiver_id: int) -> PreambleHeader:
        """Return the preamble followed by the receiver-ID symbol."""
        preamble = self.preamble_generator.waveform()
        header = self.tone_codec.encode_id(receiver_id)
        return PreambleHeader(
            waveform=np.concatenate([preamble, header]),
            preamble_length=preamble.size,
            receiver_id=int(receiver_id),
        )

    def encode_data(self, payload_bits: np.ndarray, band: BandSelection) -> EncodedPacket:
        """Encode payload bits for transmission in the selected band."""
        return self.encoder.encode(payload_bits, band)

    def build_feedback(self, band: BandSelection) -> np.ndarray:
        """Return the feedback symbol announcing a selected band."""
        return self.feedback_codec.encode(band.start_bin, band.end_bin)

    def build_ack(self) -> np.ndarray:
        """Return the ACK symbol."""
        return self.tone_codec.encode_ack()

    # ---------------------------------------------------------------- receive
    def filter_received(self, received: np.ndarray) -> np.ndarray:
        """Apply the receiver's 1-4 kHz FIR band-pass filter."""
        return self.bandpass.apply(received)

    def detect_preamble(self, received: np.ndarray) -> PreambleDetection:
        """Run the two-stage preamble detector on received audio."""
        return self.preamble_detector.detect(received)

    def decode_header(self, received: np.ndarray, preamble_start: int) -> ToneDecodeResult:
        """Decode the receiver-ID symbol that follows the preamble."""
        start = preamble_start + self.preamble_generator.total_length
        stop = start + self.ofdm_config.extended_symbol_length
        if stop > received.size:
            raise ValueError("received buffer ends before the header symbol")
        return self.tone_codec.decode(received[start:stop])

    def estimate_snr(self, received: np.ndarray, preamble_start: int) -> ChannelEstimate:
        """Estimate per-subcarrier SNR from a detected preamble."""
        symbols = self.preamble_detector.extract_symbols(received, preamble_start)
        return estimate_channel_and_snr(
            symbols, self.preamble_generator.reference_bin_values, self.ofdm_config
        )

    def select_band(
        self,
        estimate: ChannelEstimate,
        snr_threshold_db: float | None = None,
        conservative_lambda: float | None = None,
    ) -> BandSelection:
        """Run the frequency band adaptation algorithm on an SNR estimate."""
        return select_frequency_band(
            estimate.snr_db,
            self.ofdm_config,
            self.protocol_config,
            snr_threshold_db=snr_threshold_db,
            conservative_lambda=conservative_lambda,
        )

    def decode_feedback(
        self, received: np.ndarray, search_start: int = 0, search_stop: int | None = None
    ) -> FeedbackDecodeResult:
        """Decode the two-tone feedback symbol at the original transmitter."""
        return self.feedback_codec.decode(received, search_start, search_stop)

    def band_from_feedback(self, feedback: FeedbackDecodeResult) -> BandSelection:
        """Convert a decoded feedback result into a band selection."""
        if not feedback.found:
            raise ValueError("cannot build a band from an undetected feedback symbol")
        return selection_from_bins(feedback.start_bin, feedback.end_bin, self.ofdm_config)

    def decode_data(
        self,
        received: np.ndarray,
        band: BandSelection,
        num_payload_bits: int | None = None,
        apply_bandpass: bool = True,
    ) -> DecodedPacket:
        """Decode a data burst (training + data symbols) for a known band."""
        bits = num_payload_bits if num_payload_bits is not None else self.protocol_config.payload_bits
        return self.decoder.decode(received, band, bits, apply_bandpass=apply_bandpass)

    def decode_ack(self, received_symbol: np.ndarray) -> bool:
        """Return whether the received single-tone symbol is an ACK."""
        result = self.tone_codec.decode(received_symbol)
        return result.is_ack and result.dominance > self.protocol_config.ack_dominance_threshold

    # ------------------------------------------------------------- accounting
    def bitrate_for_band(self, band: BandSelection, include_cyclic_prefix: bool = False) -> float:
        """Coded bitrate implied by a selected band (bps)."""
        return bitrate_for_selection(
            band, self.ofdm_config, self.protocol_config, include_cyclic_prefix=include_cyclic_prefix
        )

    def data_burst_length(self, num_payload_bits: int, band: BandSelection) -> int:
        """Number of samples the data burst (training + data symbols) occupies."""
        return self.decoder.expected_length(num_payload_bits, band)
