"""Fixed-bandwidth baseline schemes.

The paper compares its frequency-band adaptation against transmitting in a
fixed band regardless of the channel: the full 1-4 kHz band (60 bins), a
1-2.5 kHz band (30 bins) and a 1-1.5 kHz band (10 bins).  Figures 9, 10,
12 and 15 all report these baselines, labelled by their bandwidth (3 kHz,
1.5 kHz and 0.5 kHz respectively).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adaptation import BandSelection, selection_from_bins
from repro.core.config import OFDMConfig


@dataclass(frozen=True)
class FixedBandScheme:
    """A non-adaptive transmission scheme using a fixed frequency band.

    Attributes
    ----------
    name:
        Human-readable label (matching the paper's figure legends).
    low_hz, high_hz:
        Band edges in Hz.
    """

    name: str
    low_hz: float
    high_hz: float

    def selection(self, config: OFDMConfig | None = None) -> BandSelection:
        """Return the band selection this scheme always uses."""
        config = config or OFDMConfig()
        start_bin = max(config.first_data_bin, config.frequency_to_bin(self.low_hz))
        end_bin = min(config.last_data_bin, config.frequency_to_bin(self.high_hz) - 1)
        return selection_from_bins(start_bin, end_bin, config)

    @property
    def bandwidth_hz(self) -> float:
        """Width of the fixed band in Hz."""
        return self.high_hz - self.low_hz


#: The three fixed-bandwidth baselines evaluated in the paper.
FIXED_FULL_BAND = FixedBandScheme("fixed 3 kHz (1-4 kHz)", 1000.0, 4000.0)
FIXED_MEDIUM_BAND = FixedBandScheme("fixed 1.5 kHz (1-2.5 kHz)", 1000.0, 2500.0)
FIXED_NARROW_BAND = FixedBandScheme("fixed 0.5 kHz (1-1.5 kHz)", 1000.0, 1500.0)

FIXED_BAND_SCHEMES: tuple[FixedBandScheme, ...] = (
    FIXED_FULL_BAND,
    FIXED_MEDIUM_BAND,
    FIXED_NARROW_BAND,
)
