"""Low-rate FSK SoS beacon mode (paper section 3, "longer ranges").

For ranges beyond what the OFDM mode can reach (the paper demonstrates
113 m) the system falls back to binary frequency-shift keying: a 0 bit is a
single tone at ``f0``, a 1 bit a single tone at ``f1``, with symbol
durations of 200, 100 or 50 ms giving 5, 10 or 20 bps.  A 6-bit user ID
forms an SoS beacon; an 8-bit hand-signal message can also be carried and
takes about a second at these rates.

Decoding is non-coherent: per symbol, the energy at the two candidate
frequencies (measured with the Goertzel algorithm) is compared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_one_of, require_positive

#: Bit rates supported by the beacon mode and their symbol durations.
SUPPORTED_RATES_BPS: tuple[int, ...] = (5, 10, 20)


def _goertzel_power(samples: np.ndarray, frequency_hz: float, sample_rate_hz: float) -> float:
    """Return the power of ``samples`` at a single frequency (Goertzel)."""
    n = samples.size
    k = int(round(frequency_hz * n / sample_rate_hz))
    omega = 2.0 * np.pi * k / n
    coeff = 2.0 * np.cos(omega)
    s_prev = 0.0
    s_prev2 = 0.0
    for sample in samples:
        s = sample + coeff * s_prev - s_prev2
        s_prev2 = s_prev
        s_prev = s
    power = s_prev2 ** 2 + s_prev ** 2 - coeff * s_prev * s_prev2
    return float(power) / (n * n)


@dataclass(frozen=True)
class BeaconDecodeResult:
    """Result of decoding an FSK beacon transmission.

    Attributes
    ----------
    bits:
        The decoded bit values.
    confidence:
        Per-bit ratio between the stronger and weaker tone energies (in
        dB); large values mean confident decisions.
    """

    bits: np.ndarray
    confidence: np.ndarray


class FSKBeacon:
    """Binary FSK encoder/decoder for SoS beacons and low-rate messages."""

    def __init__(
        self,
        bit_rate_bps: int = 10,
        f0_hz: float = 2000.0,
        f1_hz: float = 3000.0,
        sample_rate_hz: float = 48000.0,
    ) -> None:
        require_one_of(bit_rate_bps, SUPPORTED_RATES_BPS, "bit_rate_bps")
        require_positive(sample_rate_hz, "sample_rate_hz")
        if not 1500.0 <= f0_hz < f1_hz <= 4000.0:
            raise ValueError(
                "beacon tones must lie in the 1.5-4 kHz band with f0 < f1, "
                f"got ({f0_hz}, {f1_hz})"
            )
        self.bit_rate_bps = int(bit_rate_bps)
        self.f0_hz = float(f0_hz)
        self.f1_hz = float(f1_hz)
        self.sample_rate_hz = float(sample_rate_hz)

    @property
    def symbol_duration_s(self) -> float:
        """Duration of one FSK symbol in seconds."""
        return 1.0 / self.bit_rate_bps

    @property
    def samples_per_symbol(self) -> int:
        """Number of audio samples per FSK symbol."""
        return int(round(self.sample_rate_hz / self.bit_rate_bps))

    def encode(self, bits: np.ndarray | list[int], amplitude: float = 1.0) -> np.ndarray:
        """Return the FSK waveform for ``bits``."""
        bits = np.asarray(bits, dtype=int).ravel()
        if bits.size == 0:
            raise ValueError("bits must be non-empty")
        if not np.all((bits == 0) | (bits == 1)):
            raise ValueError("bits must be 0 or 1")
        n = self.samples_per_symbol
        t = np.arange(n) / self.sample_rate_hz
        # Scale so the waveform RMS equals ``amplitude``: the beacon then uses
        # the same average transmit power as the OFDM mode (whose symbols are
        # normalized to unit mean power).
        peak = amplitude * np.sqrt(2.0)
        tone0 = peak * np.sin(2.0 * np.pi * self.f0_hz * t)
        tone1 = peak * np.sin(2.0 * np.pi * self.f1_hz * t)
        return np.concatenate([tone1 if bit else tone0 for bit in bits])

    def encode_sos(self, user_id: int, amplitude: float = 1.0) -> np.ndarray:
        """Encode a 6-bit user ID as an SoS beacon."""
        if not 0 <= user_id < 64:
            raise ValueError(f"user_id must fit in 6 bits, got {user_id}")
        bits = [(user_id >> (5 - i)) & 1 for i in range(6)]
        return self.encode(bits, amplitude=amplitude)

    def decode(self, received: np.ndarray, num_bits: int) -> BeaconDecodeResult:
        """Decode ``num_bits`` FSK symbols from ``received``."""
        received = np.asarray(received, dtype=float).ravel()
        n = self.samples_per_symbol
        if received.size < n * num_bits:
            raise ValueError(
                f"received waveform too short for {num_bits} bits at {self.bit_rate_bps} bps"
            )
        bits = np.empty(num_bits, dtype=int)
        confidence = np.empty(num_bits, dtype=float)
        for i in range(num_bits):
            frame = received[i * n:(i + 1) * n]
            p0 = _goertzel_power(frame, self.f0_hz, self.sample_rate_hz)
            p1 = _goertzel_power(frame, self.f1_hz, self.sample_rate_hz)
            bits[i] = 1 if p1 > p0 else 0
            stronger, weaker = (p1, p0) if p1 > p0 else (p0, p1)
            confidence[i] = 10.0 * np.log10(max(stronger, 1e-30) / max(weaker, 1e-30))
        return BeaconDecodeResult(bits=bits, confidence=confidence)

    def decode_sos(self, received: np.ndarray) -> tuple[int, BeaconDecodeResult]:
        """Decode a 6-bit SoS beacon, returning ``(user_id, result)``."""
        result = self.decode(received, 6)
        user_id = 0
        for bit in result.bits:
            user_id = (user_id << 1) | int(bit)
        return user_id, result
