"""Per-subcarrier channel and SNR estimation from the preamble.

Following section 2.2.2 of the paper: the eight preamble OFDM symbols carry
the same known CAZAC values ``x(k)`` on every data subcarrier ``k``.  From
the eight received values ``y(k)`` an MMSE estimate of the per-subcarrier
channel response ``H(k)`` is formed, and the SNR of bin ``k`` is

    SNR_k = 20 * log10( ||H(k) x(k)|| / ||y(k) - H(k) x(k)|| )

which is the ratio of estimated signal energy to residual (noise) energy in
that bin across the preamble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import OFDMConfig
from repro.core.ofdm import OFDMModulator

_EPS = 1e-30

#: Cache of effective transmitted reference spectra keyed by (reference
#: values, config): the transmit chain normalizes every symbol to unit mean
#: power, so the effective bin values are the reference values scaled by the
#: factor modulation applied.  The scale is deterministic per configuration
#: and the estimator runs once per packet, so recompute it only on first use.
_REFERENCE_SPECTRUM_CACHE: dict[tuple, np.ndarray] = {}


def _reference_spectrum(reference_bin_values: np.ndarray, config: OFDMConfig) -> np.ndarray:
    key = (reference_bin_values.tobytes(), config)
    cached = _REFERENCE_SPECTRUM_CACHE.get(key)
    if cached is None:
        modulator = OFDMModulator(config)
        reference_symbol = modulator.modulate(
            reference_bin_values, config.data_bins, add_cyclic_prefix=False
        )
        cached = np.fft.rfft(reference_symbol)[config.data_bins]
        cached.setflags(write=False)
        if len(_REFERENCE_SPECTRUM_CACHE) > 16:
            _REFERENCE_SPECTRUM_CACHE.clear()
        _REFERENCE_SPECTRUM_CACHE[key] = cached
    return cached


@dataclass(frozen=True)
class ChannelEstimate:
    """Per-subcarrier channel and SNR estimate.

    Attributes
    ----------
    bin_indices:
        Absolute subcarrier indices the estimate covers.
    response:
        Complex channel response ``H(k)`` per subcarrier.
    snr_db:
        Estimated SNR per subcarrier in dB.
    noise_power:
        Residual noise power per subcarrier (linear).
    """

    bin_indices: np.ndarray
    response: np.ndarray
    snr_db: np.ndarray
    noise_power: np.ndarray

    @property
    def num_bins(self) -> int:
        """Number of estimated subcarriers."""
        return int(self.bin_indices.size)

    def snr_for_band(self, start_bin: int, end_bin: int) -> np.ndarray:
        """Return the SNR values for absolute bins ``start_bin..end_bin``."""
        mask = (self.bin_indices >= start_bin) & (self.bin_indices <= end_bin)
        return self.snr_db[mask]


def estimate_channel_and_snr(
    received_symbols: np.ndarray,
    reference_bin_values: np.ndarray,
    config: OFDMConfig,
    regularization: float = 1e-3,
) -> ChannelEstimate:
    """Estimate per-subcarrier channel response and SNR from the preamble.

    Parameters
    ----------
    received_symbols:
        Array of shape ``(num_preamble_symbols, symbol_length)`` containing
        the received preamble symbols with cyclic prefixes removed and PN
        signs already corrected (see
        :meth:`repro.core.preamble.PreambleDetector.extract_symbols`).
    reference_bin_values:
        The known CAZAC values transmitted on the data subcarriers.
    config:
        OFDM configuration describing which subcarriers carry data.
    regularization:
        Small diagonal loading used in the MMSE estimate so that bins in a
        deep fade do not blow up numerically.
    """
    received_symbols = np.asarray(received_symbols, dtype=float)
    if received_symbols.ndim != 2 or received_symbols.shape[1] != config.symbol_length:
        raise ValueError(
            f"received_symbols must be (num_symbols, {config.symbol_length}), "
            f"got {received_symbols.shape}"
        )
    reference_bin_values = np.asarray(reference_bin_values, dtype=complex).ravel()
    if reference_bin_values.size != config.num_data_bins:
        raise ValueError(
            f"expected {config.num_data_bins} reference values, got {reference_bin_values.size}"
        )
    x = _reference_spectrum(reference_bin_values, config)

    num_symbols = received_symbols.shape[0]
    received_spectra = np.fft.rfft(received_symbols, axis=1)[:, config.data_bins]

    # MMSE-style channel estimate with diagonal loading: the eight preamble
    # symbols carry identical data so the estimator reduces to an average of
    # y / x with regularization.
    x_power = np.abs(x) ** 2
    response = (np.conj(x) * received_spectra.mean(axis=0)) / (x_power + regularization)

    # Residual energy across the preamble symbols gives the noise estimate.
    predicted = response[None, :] * x[None, :]
    residual = received_spectra - predicted
    signal_energy = np.sum(np.abs(predicted) ** 2, axis=0)
    noise_energy = np.sum(np.abs(residual) ** 2, axis=0)
    snr_db = 10.0 * np.log10(np.maximum(signal_energy, _EPS) / np.maximum(noise_energy, _EPS))
    noise_power = noise_energy / num_symbols
    return ChannelEstimate(
        bin_indices=config.data_bins.copy(),
        response=response,
        snr_db=snr_db,
        noise_power=noise_power,
    )
