"""Bitrate and airtime accounting.

The paper reports the "selected coded bitrate" of a packet, which is the
information rate implied by the selected band: the number of selected
subcarriers times the subcarrier spacing times the 2/3 code rate.  With 60
subcarriers at 50 Hz spacing that is 2 kbps nominal (about 1.8 kbps once
the ~7 % cyclic-prefix overhead is included), and the medians quoted in the
evaluation (133.3 bps, 633.3 bps, ...) are exact multiples of
``50 * 2/3 = 33.3 bps`` per subcarrier.
"""

from __future__ import annotations

from repro.core.adaptation import BandSelection
from repro.core.config import OFDMConfig, ProtocolConfig


def coded_bitrate_bps(
    num_bins: int,
    config: OFDMConfig | None = None,
    protocol: ProtocolConfig | None = None,
    include_cyclic_prefix: bool = False,
) -> float:
    """Return the coded (information) bitrate for a band of ``num_bins``.

    ``include_cyclic_prefix=False`` (default) matches the bitrate figures
    quoted in the paper's CDFs; setting it to ``True`` gives the on-air
    throughput including the prefix overhead (about 1.8 kbps maximum).
    """
    if num_bins < 1:
        raise ValueError("num_bins must be at least 1")
    config = config or OFDMConfig()
    protocol = protocol or ProtocolConfig()
    if include_cyclic_prefix:
        symbols_per_second = 1.0 / config.extended_symbol_duration_s
    else:
        symbols_per_second = config.subcarrier_spacing_hz
    return num_bins * symbols_per_second * protocol.code_rate


def bitrate_for_selection(
    selection: BandSelection,
    config: OFDMConfig | None = None,
    protocol: ProtocolConfig | None = None,
    include_cyclic_prefix: bool = False,
) -> float:
    """Return the coded bitrate implied by a band selection."""
    return coded_bitrate_bps(
        selection.num_bins, config, protocol, include_cyclic_prefix=include_cyclic_prefix
    )


def packet_airtime_s(
    num_payload_bits: int,
    num_bins: int,
    config: OFDMConfig | None = None,
    protocol: ProtocolConfig | None = None,
    num_preamble_symbols: int | None = None,
    feedback_symbols: int = 1,
    silence_symbols: int = 2,
) -> float:
    """Return the total airtime of one protocol exchange in seconds.

    This accounts for the preamble, the receiver-ID symbol, the silence
    period while waiting for feedback, the feedback symbol, the training
    symbol and the data symbols -- i.e. the full sequence of Fig. 5.
    """
    import numpy as np

    config = config or OFDMConfig()
    protocol = protocol or ProtocolConfig()
    if num_preamble_symbols is None:
        num_preamble_symbols = protocol.num_preamble_symbols
    coded_bits = int(np.ceil(num_payload_bits / protocol.code_rate))
    data_symbols = int(np.ceil(coded_bits / max(num_bins, 1)))
    total_symbols = (
        num_preamble_symbols  # preamble
        + 1                    # receiver ID symbol
        + silence_symbols      # silence while waiting for feedback
        + feedback_symbols     # feedback from the receiver
        + 1                    # training symbol
        + data_symbols
    )
    return total_symbols * config.extended_symbol_duration_s


def message_latency_s(
    num_message_bits: int,
    bitrate_bps: float,
) -> float:
    """Return the time to send an application message at a given bitrate.

    Used by the discussion-section latency figures (an 8-bit hand-signal
    message takes about half a second at 25 bps; a 50-character message
    about half a second at 1 kbps).
    """
    if bitrate_bps <= 0:
        raise ValueError("bitrate_bps must be positive")
    if num_message_bits <= 0:
        raise ValueError("num_message_bits must be positive")
    return num_message_bits / bitrate_bps
