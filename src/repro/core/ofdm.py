"""OFDM symbol modulation and demodulation.

An OFDM symbol is built by placing complex values on a subset of the
real-FFT bins of a ``symbol_length``-sample frame, taking an inverse real
FFT, normalizing the frame to a fixed transmit power and prepending a
cyclic prefix.  Normalizing to *fixed total power per symbol* is what makes
the paper's "drop low-SNR bins and reallocate power to the remaining bins"
behaviour emerge naturally: fewer active bins means more power per bin.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import OFDMConfig


class OFDMModulator:
    """Modulates and demodulates single OFDM symbols for a given config."""

    def __init__(self, config: OFDMConfig, symbol_power: float = 1.0) -> None:
        if symbol_power <= 0:
            raise ValueError("symbol_power must be positive")
        self.config = config
        self.symbol_power = float(symbol_power)

    @property
    def num_spectrum_bins(self) -> int:
        """Number of bins in the one-sided (real FFT) spectrum."""
        return self.config.symbol_length // 2 + 1

    # ----------------------------------------------------------------- encode
    def modulate(
        self,
        bin_values: np.ndarray,
        bin_indices: np.ndarray,
        add_cyclic_prefix: bool = True,
        normalize_power: bool = True,
    ) -> np.ndarray:
        """Build a time-domain OFDM symbol.

        Parameters
        ----------
        bin_values:
            Complex values to place on the selected subcarriers.
        bin_indices:
            Absolute subcarrier indices (0 = DC) receiving those values.
        add_cyclic_prefix:
            Prepend the cyclic prefix when ``True``.
        normalize_power:
            Scale the symbol so its mean power equals ``symbol_power``.
            Disable for silence symbols or externally-scaled signals.
        """
        bin_values = np.asarray(bin_values, dtype=complex).ravel()
        bin_indices = np.asarray(bin_indices, dtype=int).ravel()
        if bin_values.shape != bin_indices.shape:
            raise ValueError("bin_values and bin_indices must have the same length")
        if bin_indices.size and (
            bin_indices.min() < 0 or bin_indices.max() >= self.num_spectrum_bins
        ):
            raise ValueError("bin index out of range for the configured symbol length")
        spectrum = np.zeros(self.num_spectrum_bins, dtype=complex)
        spectrum[bin_indices] = bin_values
        symbol = np.fft.irfft(spectrum, n=self.config.symbol_length)
        if normalize_power and bin_indices.size:
            power = float(np.mean(symbol ** 2))
            if power > 0:
                symbol = symbol * np.sqrt(self.symbol_power / power)
        if add_cyclic_prefix and self.config.cyclic_prefix_length > 0:
            prefix = symbol[-self.config.cyclic_prefix_length:]
            symbol = np.concatenate([prefix, symbol])
        return symbol

    def modulate_many(
        self,
        bin_values: np.ndarray,
        bin_indices: np.ndarray,
        add_cyclic_prefix: bool = True,
        normalize_power: bool = True,
    ) -> np.ndarray:
        """Build several OFDM symbols at once.

        ``bin_values`` has shape ``(num_symbols, len(bin_indices))``; every
        row becomes one symbol on the same set of subcarriers.  Returns a
        ``(num_symbols, symbol_length[+cyclic_prefix])`` array whose rows
        are bit-identical to calling :meth:`modulate` row by row -- the
        batch inverse FFT and per-row power normalization are what make the
        encoder's per-symbol Python loop disappear.
        """
        bin_values = np.asarray(bin_values, dtype=complex)
        bin_indices = np.asarray(bin_indices, dtype=int).ravel()
        if bin_values.ndim != 2 or bin_values.shape[1] != bin_indices.size:
            raise ValueError(
                "bin_values must have shape (num_symbols, len(bin_indices)), "
                f"got {bin_values.shape} for {bin_indices.size} bins"
            )
        if bin_indices.size and (
            bin_indices.min() < 0 or bin_indices.max() >= self.num_spectrum_bins
        ):
            raise ValueError("bin index out of range for the configured symbol length")
        spectrum = np.zeros((bin_values.shape[0], self.num_spectrum_bins), dtype=complex)
        spectrum[:, bin_indices] = bin_values
        symbols = np.fft.irfft(spectrum, n=self.config.symbol_length, axis=1)
        if normalize_power and bin_indices.size:
            power = np.mean(symbols ** 2, axis=1)
            scale = np.where(power > 0, np.sqrt(self.symbol_power / np.maximum(power, 1e-300)), 1.0)
            symbols = symbols * scale[:, None]
        if add_cyclic_prefix and self.config.cyclic_prefix_length > 0:
            symbols = np.concatenate(
                [symbols[:, -self.config.cyclic_prefix_length:], symbols], axis=1
            )
        return symbols

    # ---------------------------------------------------------------- decode
    def demodulate(
        self,
        symbol: np.ndarray,
        bin_indices: np.ndarray | None = None,
        has_cyclic_prefix: bool = True,
    ) -> np.ndarray:
        """Recover subcarrier values from a received time-domain symbol.

        Parameters
        ----------
        symbol:
            Received samples for one OFDM symbol (with or without its
            cyclic prefix, see ``has_cyclic_prefix``).
        bin_indices:
            Subcarrier indices to return.  ``None`` returns the full
            one-sided spectrum.
        """
        symbol = np.asarray(symbol, dtype=float).ravel()
        if has_cyclic_prefix:
            if symbol.size < self.config.extended_symbol_length:
                raise ValueError(
                    f"expected at least {self.config.extended_symbol_length} samples, "
                    f"got {symbol.size}"
                )
            symbol = symbol[self.config.cyclic_prefix_length:
                            self.config.cyclic_prefix_length + self.config.symbol_length]
        else:
            if symbol.size < self.config.symbol_length:
                raise ValueError(
                    f"expected at least {self.config.symbol_length} samples, got {symbol.size}"
                )
            symbol = symbol[: self.config.symbol_length]
        spectrum = np.fft.rfft(symbol)
        if bin_indices is None:
            return spectrum
        bin_indices = np.asarray(bin_indices, dtype=int).ravel()
        return spectrum[bin_indices]

    def demodulate_many(
        self,
        samples: np.ndarray,
        num_symbols: int,
        bin_indices: np.ndarray | None = None,
        has_cyclic_prefix: bool = True,
    ) -> np.ndarray:
        """Demodulate ``num_symbols`` consecutive symbols in one batch FFT.

        ``samples`` must hold the symbols back to back (cyclic prefixes
        included when ``has_cyclic_prefix``).  Returns a
        ``(num_symbols, len(bin_indices))`` array of subcarrier values,
        bit-identical to slicing and calling :meth:`demodulate` per symbol.
        """
        samples = np.asarray(samples, dtype=float).ravel()
        if num_symbols < 0:
            raise ValueError("num_symbols must be non-negative")
        step = (
            self.config.extended_symbol_length
            if has_cyclic_prefix
            else self.config.symbol_length
        )
        needed = num_symbols * step
        if samples.size < needed:
            raise ValueError(
                f"need {needed} samples for {num_symbols} symbols, got {samples.size}"
            )
        frames = samples[:needed].reshape(num_symbols, step)
        if has_cyclic_prefix:
            frames = frames[
                :, self.config.cyclic_prefix_length:
                self.config.cyclic_prefix_length + self.config.symbol_length
            ]
        spectra = np.fft.rfft(frames, axis=1)
        if bin_indices is None:
            return spectra
        bin_indices = np.asarray(bin_indices, dtype=int).ravel()
        return spectra[:, bin_indices]

    # ----------------------------------------------------------------- helpers
    def silence(self, num_symbols: int = 1, with_prefix: bool = True) -> np.ndarray:
        """Return zero samples spanning ``num_symbols`` OFDM symbol slots.

        Used for the post-preamble silence period: the transmitter keeps its
        audio buffer full with zeros so the OFDM symbol timer stays aligned.
        """
        if num_symbols < 0:
            raise ValueError("num_symbols must be non-negative")
        length = self.config.extended_symbol_length if with_prefix else self.config.symbol_length
        return np.zeros(num_symbols * length)

    def split_symbols(self, samples: np.ndarray, num_symbols: int) -> list[np.ndarray]:
        """Split a buffer into consecutive extended (CP-included) symbols."""
        samples = np.asarray(samples, dtype=float).ravel()
        step = self.config.extended_symbol_length
        needed = num_symbols * step
        if samples.size < needed:
            raise ValueError(f"need {needed} samples for {num_symbols} symbols, got {samples.size}")
        return [samples[i * step:(i + 1) * step] for i in range(num_symbols)]
