"""Time-domain MMSE equalization.

Underwater multipath produces long delay spreads; instead of paying for a
long cyclic prefix, the paper keeps the prefix at 7 % of the symbol and
removes inter-symbol interference with a time-domain MMSE equalizer whose
coefficients are estimated from one known training symbol prepended to the
data (section 2.3.2).

The equalizer ``g`` (length ``num_taps``, the paper uses a channel length
of 480 samples) minimizes ``E||g * y - x||^2`` where ``y`` is the received
training waveform and ``x`` the known transmitted training waveform.  The
Wiener solution solves the Toeplitz normal equations

    R_yy g = r_xy

Two solvers are available:

* ``solver="levinson"`` (default): the Levinson-Durbin recursion from
  :mod:`repro.dsp.levinson`, O(n^2) in the tap count, with the auto- and
  cross-correlations computed by FFT instead of direct ``np.correlate``
  (O(n log n) instead of O(n^2) in the training length).
* ``solver="dense"``: builds the full Toeplitz matrix and calls
  ``numpy.linalg.solve`` -- the O(n^3) reference implementation the fast
  path is pinned against in tests/test_fastpath_golden.py (agreement is
  ~1e-8 relative; the correlation values themselves agree to ~1e-12).

:meth:`MMSEEqualizer.fit_apply_many` batches the training correlations of
several bursts into shared FFT calls, which is what the batched packet
pipeline uses when many packets of the same shape are decoded together.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.fastconv import (
    CHANNEL_SPECTRUM_CACHE,
    irfft,
    irfft_n,
    next_fast_len,
    rfft,
    rfft_n,
)
from repro.dsp.levinson import solve_symmetric_toeplitz
from repro.utils.validation import require_positive

#: Toeplitz solvers :class:`MMSEEqualizer` accepts (public so callers that
#: thread a solver choice through -- DataDecoder, ModemSpec -- can validate
#: eagerly instead of failing deep inside the first decode).
EQUALIZER_SOLVERS = ("levinson", "dense")

#: Cache of time-reversal phase ramps keyed by (signal length, FFT length):
#: ``rfft(y[::-1], nf) == conj(rfft(y, nf)) * exp(-2j pi k (n-1) / nf)``,
#: so the reversed-training spectrum costs one complex multiply instead of
#: a second forward FFT per fit.
_REVERSAL_PHASE_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _reversal_phase(n: int, n_fft: int) -> np.ndarray:
    key = (n, n_fft)
    cached = _REVERSAL_PHASE_CACHE.get(key)
    if cached is None:
        k = np.arange(n_fft // 2 + 1)
        cached = np.exp(-2j * np.pi * k * (n - 1) / n_fft)
        cached.setflags(write=False)
        if len(_REVERSAL_PHASE_CACHE) > 32:
            _REVERSAL_PHASE_CACHE.clear()
        _REVERSAL_PHASE_CACHE[key] = cached
    return cached


class MMSEEqualizer:
    """Single-channel time-domain MMSE (Wiener) equalizer."""

    def __init__(
        self,
        num_taps: int = 480,
        regularization: float = 1e-3,
        delay: int = 0,
        solver: str = "levinson",
    ) -> None:
        require_positive(num_taps, "num_taps")
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if solver not in EQUALIZER_SOLVERS:
            raise ValueError(f"solver must be one of {EQUALIZER_SOLVERS}, got {solver!r}")
        self.num_taps = int(num_taps)
        self.regularization = float(regularization)
        self.delay = int(delay)
        self.solver = solver
        self.coefficients: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.coefficients is not None

    # ------------------------------------------------------------ correlations
    def _validate_training(self, y: np.ndarray, x: np.ndarray) -> None:
        if y.size != x.size:
            raise ValueError("received and reference training must have the same length")
        if y.size < self.num_taps:
            raise ValueError(
                f"training too short ({y.size} samples) for a {self.num_taps}-tap equalizer"
            )

    def _delayed_reference(self, x: np.ndarray, n: int) -> np.ndarray:
        if self.delay:
            return np.concatenate([np.zeros(self.delay), x])[:n]
        return x

    def _normal_equations(
        self, y: np.ndarray, x_target: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(r_yy, r_xy)`` for the Toeplitz normal equations.

        Both are lag ``0 .. num_taps-1`` slices of full correlations:
        ``r_yy[k] = (1/n) sum_n y[n] y[n-k]`` (biased autocorrelation) and
        ``r_xy[k] = (1/n) sum_n x_target[n] y[n-k]``.  Computed via FFT --
        ``correlate(a, y) == convolve(a, y[::-1])``, so one spectrum of the
        reversed training serves both correlations.
        """
        n = y.size
        taps = self.num_taps
        zero_lag = n - 1
        n_fft = next_fast_len(2 * n - 1)
        forward = rfft_n(y, n_fft)
        reversed_spectrum = np.conj(forward) * _reversal_phase(n, n_fft)
        auto = irfft_n(forward * reversed_spectrum, n_fft)
        # The reference training repeats across packets of the same band, so
        # its spectrum comes from the shared content-keyed cache.
        x_spectrum = CHANNEL_SPECTRUM_CACHE.spectrum(x_target, n_fft)
        cross = irfft_n(x_spectrum * reversed_spectrum, n_fft)
        r_yy = auto[zero_lag:zero_lag + taps] / n
        r_yy[0] += self.regularization * r_yy[0] + 1e-12
        r_xy = cross[zero_lag:zero_lag + taps] / n
        return r_yy, r_xy

    def _solve(self, r_yy: np.ndarray, r_xy: np.ndarray) -> np.ndarray:
        if self.solver == "dense":
            indices = np.arange(r_yy.size)
            matrix = r_yy[np.abs(indices[:, None] - indices[None, :])]
            coefficients = np.linalg.solve(matrix, r_xy)
        else:
            coefficients = solve_symmetric_toeplitz(r_yy, r_xy)
        return np.asarray(coefficients, dtype=float)

    # ------------------------------------------------------------------ single
    def fit(self, received_training: np.ndarray, reference_training: np.ndarray) -> np.ndarray:
        """Estimate the equalizer from a known training waveform.

        Parameters
        ----------
        received_training:
            Received samples corresponding to the training symbol (cyclic
            prefix included is fine; both waveforms just need to be aligned
            and of equal length).
        reference_training:
            The transmitted training waveform.

        Returns
        -------
        numpy.ndarray
            The estimated equalizer coefficients (also stored on the
            instance for :meth:`apply`).
        """
        y = np.asarray(received_training, dtype=float).ravel()
        x = np.asarray(reference_training, dtype=float).ravel()
        self._validate_training(y, x)
        x_target = self._delayed_reference(x, y.size)
        r_yy, r_xy = self._normal_equations(y, x_target)
        self.coefficients = self._solve(r_yy, r_xy)
        return self.coefficients

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Equalize ``samples`` with the fitted coefficients.

        The output is compensated for the equalizer's training delay so
        symbol timing established before equalization remains valid.
        """
        if self.coefficients is None:
            raise RuntimeError("equalizer must be fitted before it can be applied")
        samples = np.asarray(samples, dtype=float).ravel()
        # FFT convolution instead of direct FIR filtering: the taps change
        # every fit, but O((n+taps) log) still beats O(n * taps) at the
        # paper's 480-tap channel length (equivalent within ~1e-13).
        out_len = samples.size + self.coefficients.size - 1
        n_fft = next_fast_len(out_len)
        equalized = irfft_n(
            rfft_n(samples, n_fft) * rfft_n(self.coefficients, n_fft), n_fft
        )
        if self.delay:
            equalized = equalized[self.delay:]
        return equalized[: samples.size]

    def fit_apply(
        self,
        received: np.ndarray,
        training_slice: slice,
        reference_training: np.ndarray,
    ) -> np.ndarray:
        """Fit on ``received[training_slice]`` and equalize all of ``received``."""
        self.fit(np.asarray(received)[training_slice], reference_training)
        return self.apply(received)

    # ------------------------------------------------------------------- batch
    def fit_apply_many(
        self,
        bursts: list[np.ndarray],
        training_slice: slice,
        reference_training: np.ndarray,
    ) -> list[np.ndarray]:
        """Fit-and-equalize several bursts, batching the FFT correlations.

        Every burst is treated exactly like :meth:`fit_apply` (fit on its
        own training segment against the shared reference, then equalize the
        whole burst), but the auto-/cross-correlation FFTs of all training
        segments run as one batched transform.  After the call
        :attr:`coefficients` holds the taps of the *last* burst, mirroring a
        sequential loop.

        Returns the list of equalized bursts, in input order.
        """
        if not bursts:
            return []
        x = np.asarray(reference_training, dtype=float).ravel()
        trainings = []
        for burst in bursts:
            y = np.asarray(burst, dtype=float).ravel()[training_slice]
            # Every segment must match the shared reference length, which
            # also guarantees the stack below is rectangular.
            self._validate_training(y, x)
            trainings.append(y)
        n = trainings[0].size
        taps = self.num_taps
        zero_lag = n - 1
        n_fft = next_fast_len(2 * n - 1)
        stacked = np.vstack(trainings)
        x_target = self._delayed_reference(x, n)
        reversed_spectra = rfft(stacked[:, ::-1], n_fft, axis=1)
        autos = irfft(rfft(stacked, n_fft, axis=1) * reversed_spectra, n_fft, axis=1)
        crosses = irfft(rfft(x_target, n_fft)[None, :] * reversed_spectra, n_fft, axis=1)
        equalized = []
        for row, burst in enumerate(bursts):
            r_yy = autos[row, zero_lag:zero_lag + taps] / n
            r_yy[0] += self.regularization * r_yy[0] + 1e-12
            r_xy = crosses[row, zero_lag:zero_lag + taps] / n
            self.coefficients = self._solve(r_yy, r_xy)
            equalized.append(self.apply(np.asarray(burst, dtype=float).ravel()))
        return equalized
