"""Time-domain MMSE equalization.

Underwater multipath produces long delay spreads; instead of paying for a
long cyclic prefix, the paper keeps the prefix at 7 % of the symbol and
removes inter-symbol interference with a time-domain MMSE equalizer whose
coefficients are estimated from one known training symbol prepended to the
data (section 2.3.2).

The equalizer ``g`` (length ``num_taps``, the paper uses a channel length
of 480 samples) minimizes ``E||g * y - x||^2`` where ``y`` is the received
training waveform and ``x`` the known transmitted training waveform.  The
Wiener solution solves the Toeplitz normal equations

    R_yy g = r_xy

which we do with ``scipy.linalg.solve_toeplitz`` plus diagonal loading, so
fitting a 480-tap equalizer stays fast enough to run once per packet.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sp_linalg
from scipy import signal as sp_signal

from repro.utils.validation import require_positive


class MMSEEqualizer:
    """Single-channel time-domain MMSE (Wiener) equalizer."""

    def __init__(self, num_taps: int = 480, regularization: float = 1e-3, delay: int = 0) -> None:
        require_positive(num_taps, "num_taps")
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.num_taps = int(num_taps)
        self.regularization = float(regularization)
        self.delay = int(delay)
        self.coefficients: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.coefficients is not None

    def fit(self, received_training: np.ndarray, reference_training: np.ndarray) -> np.ndarray:
        """Estimate the equalizer from a known training waveform.

        Parameters
        ----------
        received_training:
            Received samples corresponding to the training symbol (cyclic
            prefix included is fine; both waveforms just need to be aligned
            and of equal length).
        reference_training:
            The transmitted training waveform.

        Returns
        -------
        numpy.ndarray
            The estimated equalizer coefficients (also stored on the
            instance for :meth:`apply`).
        """
        y = np.asarray(received_training, dtype=float).ravel()
        x = np.asarray(reference_training, dtype=float).ravel()
        if y.size != x.size:
            raise ValueError("received and reference training must have the same length")
        if y.size < self.num_taps:
            raise ValueError(
                f"training too short ({y.size} samples) for a {self.num_taps}-tap equalizer"
            )
        n = y.size
        taps = self.num_taps
        # Autocorrelation of the received training (biased estimate) for the
        # first ``taps`` lags -> Toeplitz system matrix.
        full_autocorr = np.correlate(y, y, mode="full") / n
        zero_lag = y.size - 1
        r_yy = full_autocorr[zero_lag:zero_lag + taps].copy()
        r_yy[0] += self.regularization * r_yy[0] + 1e-12
        # Cross-correlation between the (optionally delayed) reference and
        # the received signal: r_xy[k] = E[x[n - delay] * y[n - k]].
        if self.delay:
            x_target = np.concatenate([np.zeros(self.delay), x])[:n]
        else:
            x_target = x
        full_crosscorr = np.correlate(x_target, y, mode="full") / n
        r_xy = full_crosscorr[zero_lag:zero_lag + taps]
        coefficients = sp_linalg.solve_toeplitz((r_yy, r_yy), r_xy)
        self.coefficients = np.asarray(coefficients, dtype=float)
        return self.coefficients

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Equalize ``samples`` with the fitted coefficients.

        The output is compensated for the equalizer's training delay so
        symbol timing established before equalization remains valid.
        """
        if self.coefficients is None:
            raise RuntimeError("equalizer must be fitted before it can be applied")
        samples = np.asarray(samples, dtype=float).ravel()
        padded = np.concatenate([samples, np.zeros(self.coefficients.size)])
        equalized = sp_signal.lfilter(self.coefficients, 1.0, padded)
        if self.delay:
            equalized = equalized[self.delay:]
        return equalized[: samples.size]

    def fit_apply(
        self,
        received: np.ndarray,
        training_slice: slice,
        reference_training: np.ndarray,
    ) -> np.ndarray:
        """Fit on ``received[training_slice]`` and equalize all of ``received``."""
        self.fit(np.asarray(received)[training_slice], reference_training)
        return self.apply(received)
