"""The AquaApp modem: the paper's primary contribution.

This package implements the transmit and receive signal chains and the
adaptation logic described in section 2 of the paper:

* :mod:`repro.core.config` -- OFDM and protocol parameter sets.
* :mod:`repro.core.ofdm` -- OFDM symbol modulation / demodulation.
* :mod:`repro.core.preamble` -- CAZAC preamble generation, two-stage
  detection and symbol synchronization.
* :mod:`repro.core.snr` -- per-subcarrier MMSE channel / SNR estimation.
* :mod:`repro.core.adaptation` -- the frequency band selection algorithm
  (Algorithm 1).
* :mod:`repro.core.feedback` -- the two-tone feedback symbol codec.
* :mod:`repro.core.equalizer` -- time-domain MMSE equalization.
* :mod:`repro.core.coding` -- the data encoder / decoder pipeline
  (convolutional coding, interleaving, differential BPSK).
* :mod:`repro.core.modem` -- :class:`AquaModem`, tying everything together.
* :mod:`repro.core.baselines` -- the fixed-bandwidth comparison schemes.
* :mod:`repro.core.beacon` -- the low-rate FSK SoS beacon mode.
* :mod:`repro.core.tones` -- single-tone device ID / ACK encoding.
* :mod:`repro.core.rates` -- bitrate and airtime accounting.
"""

from repro.core.adaptation import BandSelection, select_frequency_band
from repro.core.baselines import FIXED_BAND_SCHEMES, FixedBandScheme
from repro.core.beacon import FSKBeacon
from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.equalizer import MMSEEqualizer
from repro.core.feedback import FeedbackCodec
from repro.core.modem import AquaModem
from repro.core.preamble import PreambleDetector, PreambleGenerator
from repro.core.snr import estimate_channel_and_snr
from repro.core.tones import ToneCodec

__all__ = [
    "OFDMConfig",
    "ProtocolConfig",
    "AquaModem",
    "PreambleGenerator",
    "PreambleDetector",
    "estimate_channel_and_snr",
    "select_frequency_band",
    "BandSelection",
    "FeedbackCodec",
    "MMSEEqualizer",
    "FixedBandScheme",
    "FIXED_BAND_SCHEMES",
    "FSKBeacon",
    "ToneCodec",
]
