"""Frequency band adaptation (Algorithm 1 of the paper).

Given the per-subcarrier SNR estimated from the preamble, the receiver
selects the *largest contiguous* band of subcarriers such that, after the
transmit power of the dropped subcarriers is reallocated to the kept ones,
every kept subcarrier still exceeds the SNR threshold:

    maximize  L = n - m + 1
    such that SNR_k + lambda * 10*log10(N0 / L) > epsilon   for all k in [m, n]

``epsilon`` is 7 dB and ``lambda`` (a conservative factor accounting for
imperfect power reallocation and channel drift due to mobility) is 0.8 in
the paper.  Only ``(f_begin, f_end)`` is fed back to the transmitter, which
keeps the feedback overhead to a single OFDM symbol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import OFDMConfig, ProtocolConfig


@dataclass(frozen=True)
class BandSelection:
    """Result of the frequency band adaptation algorithm.

    Attributes
    ----------
    start_offset, end_offset:
        Inclusive indices of the selected band *relative to the data bins*
        (0 = first data subcarrier).
    start_bin, end_bin:
        Corresponding absolute subcarrier indices.
    start_frequency_hz, end_frequency_hz:
        Corresponding subcarrier centre frequencies.
    num_bins:
        Width of the selected band in subcarriers.
    satisfied:
        Whether the SNR constraint was met.  When no band satisfies the
        constraint the algorithm falls back to the single best subcarrier
        and reports ``satisfied=False``.
    """

    start_offset: int
    end_offset: int
    start_bin: int
    end_bin: int
    start_frequency_hz: float
    end_frequency_hz: float
    num_bins: int
    satisfied: bool

    def absolute_bins(self) -> np.ndarray:
        """Return the absolute subcarrier indices of the selected band."""
        return np.arange(self.start_bin, self.end_bin + 1)


def select_frequency_band(
    snr_db: np.ndarray,
    config: OFDMConfig | None = None,
    protocol: ProtocolConfig | None = None,
    snr_threshold_db: float | None = None,
    conservative_lambda: float | None = None,
) -> BandSelection:
    """Run Algorithm 1 and return the selected contiguous band.

    Parameters
    ----------
    snr_db:
        Estimated SNR per data subcarrier (one entry per bin between the
        band edges, lowest frequency first).
    config:
        OFDM configuration used to translate offsets into absolute bins and
        frequencies.  Defaults to the paper configuration.
    protocol:
        Protocol configuration carrying the threshold and lambda defaults.
    snr_threshold_db, conservative_lambda:
        Optional overrides of the protocol parameters (used by the ablation
        benchmarks).
    """
    config = config or OFDMConfig()
    protocol = protocol or ProtocolConfig()
    threshold = protocol.snr_threshold_db if snr_threshold_db is None else float(snr_threshold_db)
    lam = protocol.conservative_lambda if conservative_lambda is None else float(conservative_lambda)
    snr_db = np.asarray(snr_db, dtype=float).ravel()
    n0 = snr_db.size
    if n0 == 0:
        raise ValueError("snr_db must contain at least one subcarrier")
    if n0 != config.num_data_bins:
        raise ValueError(
            f"snr_db has {n0} entries but the configuration defines {config.num_data_bins} data bins"
        )

    # Window minima for every width at once via the pairwise-minimum
    # recurrence min_w[i] = min(min_{w-1}[i], snr[i+w-1]) -- O(n^2) total
    # instead of one sliding-window reduction per width.  Only the best
    # window per width is needed later, so the minima buffer is updated in
    # place and just the (argmax, max) pairs are kept.
    best_starts = np.empty(n0, dtype=int)
    best_minima = np.empty(n0)
    running = snr_db.copy()
    best = int(np.argmax(running))
    best_starts[0] = best
    best_minima[0] = running[best]
    for width in range(2, n0 + 1):
        view = running[: n0 - width + 1]
        np.minimum(view, snr_db[width - 1:], out=view)
        best = int(np.argmax(view))
        best_starts[width - 1] = best
        best_minima[width - 1] = view[best]

    for width in range(n0, 0, -1):
        bonus = lam * 10.0 * np.log10(n0 / width)
        # Among equally wide qualifying bands prefer the one with the
        # highest worst-case SNR, which is the conservative choice; the
        # first-qualifying-argmax is exactly what scanning all qualifying
        # windows yields.
        if best_minima[width - 1] + bonus > threshold:
            start = int(best_starts[width - 1])
            end = start + width - 1
            return _build_selection(start, end, config, satisfied=True)

    # No band satisfies the constraint even at width one: fall back to the
    # single strongest subcarrier so the link can still attempt delivery.
    best = int(np.argmax(snr_db))
    return _build_selection(best, best, config, satisfied=False)


def _build_selection(
    start_offset: int, end_offset: int, config: OFDMConfig, satisfied: bool
) -> BandSelection:
    start_bin = int(config.first_data_bin + start_offset)
    end_bin = int(config.first_data_bin + end_offset)
    return BandSelection(
        start_offset=int(start_offset),
        end_offset=int(end_offset),
        start_bin=start_bin,
        end_bin=end_bin,
        start_frequency_hz=config.bin_frequency_hz(start_bin),
        end_frequency_hz=config.bin_frequency_hz(end_bin),
        num_bins=int(end_offset - start_offset + 1),
        satisfied=bool(satisfied),
    )


def selection_from_bins(start_bin: int, end_bin: int, config: OFDMConfig | None = None) -> BandSelection:
    """Build a :class:`BandSelection` directly from absolute bin indices.

    Used by the fixed-bandwidth baseline schemes and by the transmitter
    after decoding the feedback symbol.
    """
    config = config or OFDMConfig()
    if start_bin > end_bin:
        start_bin, end_bin = end_bin, start_bin
    if start_bin < config.first_data_bin or end_bin > config.last_data_bin:
        raise ValueError(
            f"bins [{start_bin}, {end_bin}] outside the data band "
            f"[{config.first_data_bin}, {config.last_data_bin}]"
        )
    return _build_selection(
        start_bin - config.first_data_bin, end_bin - config.first_data_bin, config, satisfied=True
    )
