"""Single-tone OFDM symbols for device IDs and ACKs.

The paper encodes device IDs and acknowledgements by concentrating the
entire transmit power of one OFDM symbol into a single subcarrier
(section 2.3.2, "Encoding ID and ACKs"):

* an ACK places all power on the subcarrier at 1 kHz;
* a device ID ``i`` (0-59) places all power on the ``i``-th data
  subcarrier, limiting the local network to 60 devices -- acceptable for a
  group of divers.

Decoding is a simple arg-max over the in-band FFT magnitudes of the symbol,
which is robust because no other subcarrier carries energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import OFDMConfig
from repro.core.ofdm import OFDMModulator


@dataclass(frozen=True)
class ToneDecodeResult:
    """Result of decoding a single-tone symbol.

    Attributes
    ----------
    bin_index:
        Absolute subcarrier index of the strongest tone.
    value:
        Decoded value: the device ID for an ID symbol, 0 for an ACK.
    is_ack:
        Whether the tone corresponds to the ACK subcarrier.
    dominance:
        Fraction of in-band energy captured by the strongest bin -- a
        confidence measure (1.0 means a clean single tone).
    """

    bin_index: int
    value: int
    is_ack: bool
    dominance: float


class ToneCodec:
    """Encodes and decodes single-tone ID / ACK OFDM symbols."""

    def __init__(self, ofdm_config: OFDMConfig | None = None) -> None:
        self.ofdm_config = ofdm_config or OFDMConfig()
        self._modulator = OFDMModulator(self.ofdm_config)

    @property
    def max_devices(self) -> int:
        """Maximum number of addressable devices (one per data subcarrier)."""
        return self.ofdm_config.num_data_bins

    @property
    def ack_bin(self) -> int:
        """Absolute subcarrier index used for ACKs (the 1 kHz bin)."""
        return self.ofdm_config.first_data_bin

    def encode_id(self, device_id: int) -> np.ndarray:
        """Return the OFDM symbol announcing ``device_id``."""
        if not 0 <= device_id < self.max_devices:
            raise ValueError(
                f"device_id must be in [0, {self.max_devices - 1}], got {device_id}"
            )
        bin_index = self.ofdm_config.first_data_bin + device_id
        return self._modulator.modulate(
            np.array([1.0 + 0.0j]), np.array([bin_index]), add_cyclic_prefix=True
        )

    def encode_ack(self) -> np.ndarray:
        """Return the OFDM symbol acknowledging a successful packet."""
        return self._modulator.modulate(
            np.array([1.0 + 0.0j]), np.array([self.ack_bin]), add_cyclic_prefix=True
        )

    def decode(self, symbol: np.ndarray, has_cyclic_prefix: bool = True) -> ToneDecodeResult:
        """Decode a received single-tone symbol."""
        spectrum = self._modulator.demodulate(
            symbol, self.ofdm_config.data_bins, has_cyclic_prefix=has_cyclic_prefix
        )
        power = np.abs(spectrum) ** 2
        total = float(power.sum())
        best = int(np.argmax(power))
        bin_index = int(self.ofdm_config.data_bins[best])
        dominance = float(power[best] / total) if total > 0 else 0.0
        return ToneDecodeResult(
            bin_index=bin_index,
            value=bin_index - self.ofdm_config.first_data_bin,
            is_ack=bin_index == self.ack_bin,
            dominance=dominance,
        )
