"""Command-line interface for the AquaApp reproduction.

Provides quick access to the most common experiments without writing any
code::

    python -m repro.cli link --site lake --distance 10 --packets 20
    python -m repro.cli sweep --site lake --distance 5 10 20 --scheme adaptive fixed-3k
    python -m repro.cli net --nodes 50 --routing greedy --traffic poisson
    python -m repro.cli trace capture --nodes 9 --out run.jsonl
    python -m repro.cli trace compare --trace run.jsonl --b-link physical
    python -m repro.cli sos --distance 100 --rate 10 --repetitions 5
    python -m repro.cli mac --transmitters 3 --packets 120
    python -m repro.cli bench --quick
    python -m repro.cli validate --quick --compare-reference
    python -m repro.cli sites

Each subcommand prints a small report mirroring the metrics the paper uses
(selected bitrate, PER, BER, detection rates, collision fractions).  The
``sweep`` subcommand expands a parameter grid with
:mod:`repro.experiments` and runs it across worker processes; ``bench``
runs the :mod:`repro.perf` microbenchmark suites and writes one
``BENCH_<suite>.json`` per suite; ``validate`` runs the
:mod:`repro.validation` Monte-Carlo figure harness against the committed
``VALID_<figure>.json`` envelopes.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.app.sos import SosBeaconService
from repro.channel.motion import MOTION_PRESETS
from repro.core.baselines import FIXED_BAND_SCHEMES
from repro.environments.factory import build_channel, build_link_pair
from repro.environments.sites import SITE_CATALOG
from repro.experiments import SCHEME_CATALOG, ExperimentRunner, Scenario, Sweep
from repro.link.session import LinkSession
from repro.mac.simulator import MacNetworkSimulator, TransmitterConfig


def _add_link_parser(subparsers) -> None:
    parser = subparsers.add_parser("link", help="run adaptive packet exchanges over one link")
    parser.add_argument("--site", choices=sorted(SITE_CATALOG), default="lake")
    parser.add_argument("--distance", type=float, default=5.0, help="distance in metres")
    parser.add_argument("--depth", type=float, default=1.0, help="device depth in metres")
    parser.add_argument("--packets", type=int, default=20)
    parser.add_argument("--motion", choices=sorted(MOTION_PRESETS), default="static")
    parser.add_argument("--scheme", choices=["adaptive", "fixed-3k", "fixed-1.5k", "fixed-0.5k"],
                        default="adaptive")
    parser.add_argument("--seed", type=int, default=0)


def _add_sweep_grid_args(parser) -> None:
    """Grid axis flags shared by the sweep and serve subcommands."""
    parser.add_argument("--site", nargs="+", choices=sorted(SITE_CATALOG), default=["lake"])
    parser.add_argument("--distance", nargs="+", type=float, default=[5.0],
                        help="distances in metres")
    parser.add_argument("--depth", nargs="+", type=float, default=[1.0],
                        help="device depths in metres")
    parser.add_argument("--orientation", nargs="+", type=float, default=[0.0],
                        help="azimuth offsets in degrees")
    parser.add_argument("--motion", nargs="+", choices=sorted(MOTION_PRESETS),
                        default=["static"])
    parser.add_argument("--scheme", nargs="+", choices=sorted(SCHEME_CATALOG),
                        default=["adaptive"])
    parser.add_argument("--packets", type=int, default=20, help="packets per scenario")
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario i uses seed + i")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per core, capped "
                             "at the number of scenarios; 1 = serial)")


def _add_sweep_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "sweep",
        help="run a declarative grid of link experiments, in parallel",
        description="Expand a parameter grid into scenarios and run them with "
                    "the experiment runner.  Every axis flag accepts several "
                    "values; the grid is their cartesian product, and each "
                    "scenario gets a deterministic seed derived from --seed.",
    )
    _add_sweep_grid_args(parser)
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="cache results as JSON under DIR, keyed by scenario hash")
    parser.add_argument("--json", metavar="FILE", dest="json_path", default=None,
                        help="also write the result set to FILE as JSON")
    parser.add_argument("--npz", metavar="FILE", dest="npz_path", default=None,
                        help="also write the columnar result arenas to FILE "
                             "as a .npz artifact")
    parser.add_argument("--stream", action="store_true",
                        help="print a progress/ETA line to stderr as each "
                             "scenario completes")


def _add_serve_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="submit a sweep to the streaming job service and stream results",
        description="Submit the parameter grid as a content-addressed job "
                    "under --jobs, stream its records as they complete, and "
                    "leave results.npz/results.json artifacts behind.  "
                    "Resubmitting an identical grid is served entirely from "
                    "the artifacts (a 100% cache hit).",
    )
    _add_sweep_grid_args(parser)
    parser.add_argument("--jobs", metavar="DIR", dest="jobs_dir", required=True,
                        help="service root directory (holds jobs/ and cache/)")
    parser.add_argument("--label", default="", help="human-readable job tag")


def _add_jobs_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "jobs",
        help="inspect the sweep job service: list, show, fetch artifacts",
    )
    parser.add_argument("--jobs", metavar="DIR", dest="jobs_dir", required=True,
                        help="service root directory (holds jobs/ and cache/)")
    parser.add_argument("--show", metavar="JOB_ID", default=None,
                        help="print one job's state and (when done) its table")
    parser.add_argument("--fetch", metavar="JOB_ID", default=None,
                        help="export a finished job's results to --out")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="destination for --fetch (.npz = columnar "
                             "artifact, anything else = JSON)")


def _add_bench_parser(subparsers) -> None:
    from repro.perf import available_suites

    parser = subparsers.add_parser(
        "bench",
        help="run the microbenchmark suites and write BENCH_<suite>.json",
        description="Time the FEC/DSP/link hot paths with warmup and "
                    "repeats.  Each suite's results are printed and written "
                    "to BENCH_<suite>.json so the perf trajectory "
                    "accumulates across PRs.",
    )
    parser.add_argument("--suite", nargs="+", choices=sorted(available_suites()),
                        default=None,
                        help="suites to run (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats for CI smoke runs; workloads are "
                             "unchanged so numbers stay comparable")
    parser.add_argument("--json", metavar="DIR", dest="json_dir", default=".",
                        help="directory receiving BENCH_<suite>.json "
                             "(default: current directory)")
    parser.add_argument("--compare", metavar="BASELINE", nargs="+", default=None,
                        help="previously written BENCH_*.json files to "
                             "compare against (percent-change report)")
    parser.add_argument("--fail-above", metavar="PCT", type=float, default=None,
                        help="exit non-zero if any compared benchmark's median "
                             "regresses by more than PCT percent -- the perf "
                             "ratchet CI runs against the committed baselines")


def _add_net_scenario_args(parser) -> None:
    """Flags describing one NetScenario (shared by net/trace subcommands)."""
    from repro.experiments.net_scenario import (
        ARQ_KINDS,
        LINK_KINDS,
        TOPOLOGY_KINDS,
        TRAFFIC_KINDS,
    )
    from repro.net.congestion import CC_KINDS
    from repro.net.routing import ROUTING_CATALOG

    parser.add_argument("--site", choices=sorted(SITE_CATALOG), default="lake")
    parser.add_argument("--nodes", type=int, default=9, help="deployment size")
    parser.add_argument("--topology", choices=TOPOLOGY_KINDS, default="grid")
    parser.add_argument("--spacing", type=float, default=8.0,
                        help="node spacing in metres")
    parser.add_argument("--range", dest="comm_range", type=float, default=12.0,
                        help="neighbour range in metres")
    parser.add_argument("--routing", choices=sorted(ROUTING_CATALOG), default="greedy")
    parser.add_argument("--link", choices=LINK_KINDS, default="calibrated")
    parser.add_argument("--arq", choices=ARQ_KINDS, default="go-back-n")
    parser.add_argument("--window", type=int, default=4,
                        help="ARQ window size (segments in flight)")
    parser.add_argument("--timeout", type=float, default=6.0,
                        help="ARQ retransmission timeout in seconds (the "
                             "reno controller adapts from this initial "
                             "value)")
    parser.add_argument("--max-retries", type=int, default=4,
                        help="retransmissions per segment before a flow "
                             "aborts")
    parser.add_argument("--cc", choices=CC_KINDS, default="fixed",
                        help="per-flow congestion controller: 'fixed' is the "
                             "legacy constant window, 'reno' the AIMD "
                             "controller with adaptive RTO")
    parser.add_argument("--flows", type=int, default=None,
                        help="run N concurrent convergecast flows (the N "
                             "nodes farthest from the destination, default "
                             "n0, all send through shared relays)")
    parser.add_argument("--queue-capacity", type=int, default=None,
                        help="bound every node's transmit buffer to this "
                             "many packets (tail drop, reported as queue "
                             "drops)")
    parser.add_argument("--traffic", choices=TRAFFIC_KINDS, default="poisson")
    parser.add_argument("--rate", type=float, default=0.02,
                        help="messages per second per source")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="traffic horizon in seconds (simulated)")
    parser.add_argument("--destination", default=None,
                        help="fixed destination node (default: random peers)")
    parser.add_argument("--ttl", type=int, default=8,
                        help="hop budget per packet copy (raise for large "
                             "deployments, e.g. 80 for a 1000-node grid)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--faults", metavar="FILE", default=None,
                        help="inject a repro.faults schedule (JSON) into the "
                             "run: node crashes/recoveries, link blackouts "
                             "and degradations, noise bursts, energy "
                             "depletion, seeded churn")
    parser.add_argument("--no-repair", action="store_true",
                        help="with --faults: disable the resilience response "
                             "(liveness tracking, route repair, proactive "
                             "aborts, SOS re-flooding) -- the chaos A/B "
                             "baseline")


def _net_scenario_from_args(args, **forced):
    """Build the NetScenario the shared flags describe."""
    from repro.experiments.net_scenario import NetScenario

    fields = dict(
        site=args.site,
        topology=args.topology,
        num_nodes=args.nodes,
        spacing_m=args.spacing,
        comm_range_m=args.comm_range,
        routing=args.routing,
        link=args.link,
        arq=args.arq,
        window_size=args.window,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        cc=args.cc,
        num_flows=args.flows,
        queue_capacity=args.queue_capacity,
        traffic=args.traffic,
        rate_msgs_per_s=args.rate,
        duration_s=args.duration,
        destination=args.destination,
        ttl=args.ttl,
        seed=args.seed,
    )
    faults_path = getattr(args, "faults", None)
    if faults_path:
        from repro.faults import load_schedule

        schedule = load_schedule(faults_path)
        if getattr(args, "no_repair", False):
            schedule = schedule.with_repair(False)
        fields["faults_json"] = schedule.to_json()
    fields.update(forced)
    return NetScenario(**fields)


def _add_net_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "net",
        help="simulate a multi-hop underwater network",
        description="Run one repro.net scenario: N nodes at a site, a "
                    "routing protocol, a per-hop link model (full PHY or "
                    "the PHY-calibrated fast table), optional sliding-window "
                    "ARQ and a traffic workload.  Prints PDR, end-to-end "
                    "latency, hop counts and an energy proxy.",
    )
    _add_net_scenario_args(parser)
    parser.add_argument("--packets-per-point", type=int, default=None,
                        help="with --link calibrated: rebuild the PER/bitrate "
                             "table from the full PHY with this many packets "
                             "per distance (progress/ETA printed) instead of "
                             "replaying the baked lake table")
    parser.add_argument("--quick", action="store_true",
                        help="cap the traffic horizon at 30 simulated seconds "
                             "-- the CI smoke mode for large deployments "
                             "(e.g. `net --nodes 1000 --quick`)")
    parser.add_argument("--progress", action="store_true",
                        help="print progress/ETA lines while the event queue "
                             "drains (long runs)")
    parser.add_argument("--json", metavar="FILE", dest="json_path", default=None,
                        help="also write the result summary to FILE as JSON")


def _add_trace_parser(subparsers) -> None:
    from repro.experiments.net_scenario import ARQ_KINDS, LINK_KINDS
    from repro.net.routing import ROUTING_CATALOG

    parser = subparsers.add_parser(
        "trace",
        help="capture, replay, synthesize and compare app-layer traces",
        description="The repro.trace workflows: `capture` records a network "
                    "run as a portable trace (JSON lines, or columnar .npz "
                    "by extension), `replay` feeds a trace back through any "
                    "stack configuration deterministically, `synth` expands "
                    "a parameterized user population into a replayable "
                    "trace, and `compare` replays one trace against two "
                    "stacks and reports the QoE deltas (latency "
                    "percentiles, message QoE score, SOS deadline misses).",
    )
    trace_sub = parser.add_subparsers(dest="trace_command", required=True)

    capture = trace_sub.add_parser(
        "capture", help="run a scenario and record its app-layer trace")
    _add_net_scenario_args(capture)
    capture.add_argument("--out", required=True, metavar="FILE",
                         help="trace file to write (.jsonl or .npz)")
    capture.add_argument("--progress", action="store_true",
                         help="print progress/ETA lines during the run")

    replay = trace_sub.add_parser(
        "replay", help="replay a trace against a (possibly modified) stack")
    replay.add_argument("--trace", required=True, dest="trace_path",
                        metavar="FILE", help="trace file (.jsonl or .npz)")
    replay.add_argument("--link", choices=LINK_KINDS, default=None,
                        help="override the captured stack's link model")
    replay.add_argument("--routing", choices=sorted(ROUTING_CATALOG), default=None,
                        help="override the captured stack's routing")
    replay.add_argument("--arq", choices=ARQ_KINDS, default=None,
                        help="override the captured stack's ARQ mode")
    replay.add_argument("--seed", type=int, default=None,
                        help="override the captured stack's seed")
    replay.add_argument("--check-roundtrip", action="store_true",
                        help="assert the replay reproduces the capture run's "
                             "metrics bit for bit (no overrides allowed); "
                             "exit 1 on any difference")
    replay.add_argument("--progress", action="store_true",
                        help="print progress/ETA lines during the replay")
    replay.add_argument("--json", metavar="FILE", dest="json_path", default=None,
                        help="also write the result + QoE report as JSON")

    synth = trace_sub.add_parser(
        "synth", help="synthesize a user-population workload into a trace")
    _add_net_scenario_args(synth)
    synth.add_argument("--group-size", type=int, default=4,
                       help="users per dive group / vessel crew")
    synth.add_argument("--duty", type=float, default=0.35,
                       help="fraction of time a user is in an active session")
    synth.add_argument("--session", type=float, default=120.0,
                       help="mean active-session length in seconds")
    synth.add_argument("--diurnal-period", type=float, default=None,
                       help="activity-cycle period in seconds "
                            "(default: duration/2)")
    synth.add_argument("--diurnal-depth", type=float, default=0.8,
                       help="rate swing of the activity cycle in [0, 1]")
    synth.add_argument("--size-mean", type=float, default=16.0,
                       help="lognormal message-size scale in bits")
    synth.add_argument("--size-sigma", type=float, default=1.0,
                       help="lognormal shape (heavier tail when larger)")
    synth.add_argument("--out", required=True, metavar="FILE",
                       help="trace file to write (.jsonl or .npz)")

    compare = trace_sub.add_parser(
        "compare", help="replay one trace against two stacks, report QoE deltas")
    compare.add_argument("--trace", required=True, dest="trace_path",
                         metavar="FILE", help="trace file (.jsonl or .npz)")
    for side, default_hint in (("a", "the captured stack"),
                               ("b", "the full-PHY reference")):
        compare.add_argument(f"--{side}-link", choices=LINK_KINDS, default=None,
                             help=f"stack {side.upper()} link model "
                                  f"(default: {default_hint})")
        compare.add_argument(f"--{side}-routing", choices=sorted(ROUTING_CATALOG),
                             default=None,
                             help=f"stack {side.upper()} routing override")
        compare.add_argument(f"--{side}-arq", choices=ARQ_KINDS, default=None,
                             help=f"stack {side.upper()} ARQ override")
    compare.add_argument("--tau", type=float, default=None,
                         help="QoE latency decay constant in seconds "
                              "(default: 30)")
    compare.add_argument("--sos-deadline", type=float, default=None,
                         help="SOS alert delivery deadline in seconds "
                              "(default: 60)")
    compare.add_argument("--json", metavar="FILE", dest="json_path", default=None,
                         help="also write the comparison as JSON")


def _add_validate_parser(subparsers) -> None:
    from repro.validation import available_figures

    parser = subparsers.add_parser(
        "validate",
        help="Monte-Carlo validation of the paper figures with CI gates",
        description="Run each figure spec as N seeded trials per grid "
                    "point, report 95% Wilson/normal confidence intervals "
                    "per metric, optionally gate the headline metrics "
                    "against the committed VALID_<figure>.json envelopes, "
                    "and rerun link figures seed-paired against the "
                    "reference implementations (fftconvolve channel, dense "
                    "equalizer solve) to confirm fast-path equivalence "
                    "end to end.",
    )
    parser.add_argument("--figure", nargs="+", choices=available_figures(),
                        default=None, help="figures to run (default: all)")
    parser.add_argument("--trials", type=int, default=None,
                        help="Monte-Carlo trials per grid point "
                             "(default: 5, or 2 with --quick)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed offsetting every trial seed")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: quick grid subsets, fewer "
                             "trials/packets, A/B equivalence included")
    parser.add_argument("--compare-reference", action="store_true",
                        help="gate headline metrics against the committed "
                             "VALID_<figure>.json envelopes (exit 1 on fail)")
    parser.add_argument("--write-reference", action="store_true",
                        help="(re)write VALID_<figure>.json from this run -- "
                             "do this after an intentional physics change")
    parser.add_argument("--reference-dir", metavar="DIR", default=".",
                        help="directory of the VALID_*.json envelopes "
                             "(default: current directory)")
    parser.add_argument("--ab-compare", choices=["fast-path", "solver", "both", "none"],
                        default=None,
                        help="seed-paired reference rerun of the first "
                             "selected link figure (default: both with "
                             "--quick, none otherwise)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for link figures")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="experiment-runner result cache directory")
    parser.add_argument("--json", metavar="FILE", dest="json_path", default=None,
                        help="also write the validation report to FILE as JSON")


def _add_sos_parser(subparsers) -> None:
    parser = subparsers.add_parser("sos", help="broadcast SoS beacons over a long-range link")
    parser.add_argument("--site", choices=sorted(SITE_CATALOG), default="beach")
    parser.add_argument("--distance", type=float, default=100.0)
    parser.add_argument("--rate", type=int, choices=[5, 10, 20], default=10)
    parser.add_argument("--user-id", type=int, default=27)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)


def _add_chaos_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "chaos",
        help="fault-injection A/B: same faults with repair on vs off",
        description="Run one repro.net scenario twice under the same fault "
                    "schedule -- once with the resilience response enabled "
                    "(liveness tracking, route repair, proactive aborts, SOS "
                    "re-flooding) and once with it disabled -- and compare "
                    "delivery, latency and per-reason drop/abort counters.  "
                    "Without --faults, a seeded random churn schedule is "
                    "generated from --churn-rate/--mean-downtime.",
    )
    _add_net_scenario_args(parser)
    parser.add_argument("--churn-rate", type=float, default=0.002,
                        help="without --faults: per-node crash rate in "
                             "crashes per second (exponential up-times)")
    parser.add_argument("--mean-downtime", type=float, default=60.0,
                        help="without --faults: mean outage length in "
                             "seconds (exponential down-times)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="without --faults: seed for the generated churn "
                             "schedule (independent of the scenario seed)")
    parser.add_argument("--json", metavar="FILE", dest="json_path", default=None,
                        help="also write both runs' metrics and the schedule "
                             "to FILE as JSON")


def _add_mac_parser(subparsers) -> None:
    parser = subparsers.add_parser("mac", help="simulate the carrier-sense MAC")
    parser.add_argument("--transmitters", type=int, default=3)
    parser.add_argument("--packets", type=int, default=120)
    parser.add_argument("--no-carrier-sense", action="store_true")
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AquaApp reproduction: underwater messaging experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_link_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_jobs_parser(subparsers)
    _add_net_parser(subparsers)
    _add_trace_parser(subparsers)
    _add_bench_parser(subparsers)
    _add_validate_parser(subparsers)
    _add_sos_parser(subparsers)
    _add_chaos_parser(subparsers)
    _add_mac_parser(subparsers)
    subparsers.add_parser("sites", help="list the simulated evaluation sites")
    return parser


# --------------------------------------------------------------------- commands
def _scheme_from_name(name: str):
    if name == "adaptive":
        return "adaptive"
    index = {"fixed-3k": 0, "fixed-1.5k": 1, "fixed-0.5k": 2}[name]
    return FIXED_BAND_SCHEMES[index]


def _run_link(args) -> int:
    site = SITE_CATALOG[args.site]
    forward, backward = build_link_pair(
        site=site, distance_m=args.distance, tx_depth_m=args.depth,
        motion=MOTION_PRESETS[args.motion], seed=args.seed,
    )
    session = LinkSession(forward, backward, scheme=_scheme_from_name(args.scheme),
                          seed=args.seed + 1)
    stats = session.run_packets(args.packets)
    print(f"site={site.name} distance={args.distance} m depth={args.depth} m "
          f"motion={args.motion} scheme={args.scheme} packets={args.packets}")
    print(f"  packet error rate        : {stats.packet_error_rate:.1%}")
    print(f"  median coded bitrate     : {stats.median_bitrate_bps:.0f} bps")
    print(f"  uncoded (coded-stream) BER: {stats.coded_bit_error_rate:.3f}")
    print(f"  preamble detection rate  : {stats.preamble_detection_rate:.1%}")
    print(f"  feedback error rate      : {stats.feedback_error_rate:.1%}")
    return 0


def _grid_scenarios(args) -> list[Scenario]:
    """Expand the shared sweep/serve grid flags into scenarios."""
    sweep = (
        Sweep(Scenario(num_packets=args.packets))
        .over(
            site=args.site,
            distance_m=args.distance,
            tx_depth_m=args.depth,
            orientation_deg=args.orientation,
            motion=args.motion,
            scheme=args.scheme,
        )
        .seeded(args.seed)
    )
    return sweep.scenarios()


def _run_sweep(args) -> int:
    try:
        scenarios = _grid_scenarios(args)
        runner = ExperimentRunner(max_workers=args.workers, cache_dir=args.cache)
    except ValueError as error:
        # Invalid grid parameters (bad distance/range, worker count, ...);
        # genuine simulation errors during the run keep their tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2
    results = runner.run_columnar(scenarios, progress=True if args.stream else None)
    workers = args.workers if args.workers is not None else "auto"
    print(f"{len(scenarios)} scenario(s), {args.packets} packets each, "
          f"workers={workers}"
          + (f", cache hits {runner.last_cache_hits}/{len(scenarios)}"
             if args.cache else ""))
    print(results.to_table())
    print(f"  total simulated work     : {results.total_elapsed_s:.1f} s")
    if args.json_path:
        path = results.save(args.json_path)
        print(f"  results written to       : {path}")
    if args.npz_path:
        path = results.save_npz(args.npz_path)
        print(f"  columnar artifact        : {path}")
    return 0


def _run_serve(args) -> int:
    from repro.experiments.service import SweepService

    try:
        scenarios = _grid_scenarios(args)
        service = SweepService(args.jobs_dir, max_workers=args.workers)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    job = service.submit(scenarios, label=args.label)
    served_from_artifact = job.done
    print(f"job {job.job_id}: {job.total} scenario(s), state={job.state}")
    count = 0
    for record in service.stream(job.job_id):
        count += 1
        print(f"  [{count}/{job.total}] {record.scenario.describe()} "
              f"per={record.packet_error_rate:.2f} "
              f"median_bps={record.median_bitrate_bps:.0f}")
    final = service.poll(job.job_id)
    # Streaming a finished job touches no simulator at all; report it as
    # the full-sweep cache hit it is.
    hits = final.total if served_from_artifact else final.cache_hits
    print(f"job {job.job_id} done: cache hits {hits}/{final.total} "
          f"(artifact: {service.artifact_path(job.job_id)})")
    return 0


def _run_jobs(args) -> int:
    from repro.experiments.service import SweepService

    service = SweepService(args.jobs_dir)
    if args.fetch:
        if not args.out:
            print("error: --fetch requires --out", file=sys.stderr)
            return 2
        try:
            path = service.fetch(args.fetch, args.out)
        except (KeyError, RuntimeError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"job {args.fetch} artifact written to {path}")
        return 0
    if args.show:
        try:
            job = service.poll(args.show)
        except (KeyError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"job {job.job_id}: state={job.state} "
              f"completed={job.completed}/{job.total} "
              f"cache_hits={job.cache_hits}"
              + (f" label={job.label}" if job.label else ""))
        if job.done:
            print(service.result(job.job_id).to_table())
        return 0
    jobs = service.list_jobs()
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(f"{job.job_id}  {job.state:9s} {job.completed}/{job.total}"
              + (f"  {job.label}" if job.label else ""))
    return 0


def _run_bench(args) -> int:
    from repro.perf import (
        available_suites,
        compare_results,
        format_comparison,
        format_results,
        gate_comparison,
        load_results,
        run_suite,
        write_results,
    )

    if args.fail_above is not None and not args.compare:
        print("error: --fail-above requires --compare baselines", file=sys.stderr)
        return 2
    if args.fail_above is not None and args.fail_above < 0:
        print("error: --fail-above must be non-negative", file=sys.stderr)
        return 2
    suites = list(args.suite) if args.suite else list(available_suites())
    baselines: dict[str, list] = {}
    for path in args.compare or []:
        try:
            suite_name, results = load_results(path)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot read baseline {path}: {error}", file=sys.stderr)
            return 2
        baselines[suite_name] = results
    mode = "quick" if args.quick else "full"
    regressions = []
    for name in suites:
        results = run_suite(name, quick=args.quick)
        path = write_results(name, results, directory=args.json_dir, quick=args.quick)
        print(f"suite {name} ({mode}, {len(results)} benchmarks) -> {path}")
        print(format_results(results))
        baseline = baselines.get(name)
        if baseline is not None:
            rows = compare_results(baseline, results)
            print(format_comparison(rows, name))
            if args.fail_above is not None:
                regressions.extend((name, row) for row in gate_comparison(rows, args.fail_above))
    unknown = set(baselines) - set(suites)
    if unknown:
        print(f"note: baselines for suites not run were ignored: {', '.join(sorted(unknown))}")
    if regressions:
        print(f"PERF GATE FAILED (threshold +{args.fail_above:g}%):", file=sys.stderr)
        for suite_name, row in regressions:
            print(
                f"  {suite_name}/{row.name}: {row.baseline_s * 1000:.3f} ms -> "
                f"{row.current_s * 1000:.3f} ms ({row.percent_change:+.1f}%)",
                file=sys.stderr,
            )
        return 1
    if args.fail_above is not None:
        print(f"perf gate passed (no regression above +{args.fail_above:g}%)")
    return 0


def _run_validate(args) -> int:
    from repro.validation import (
        FigureReport,
        MonteCarloRunner,
        ValidationReport,
        ab_compare,
        available_figures,
        check_against_envelope,
        get_figure,
        load_envelope,
        valid_json_path,
        write_envelope,
    )

    if args.trials is not None and args.trials < 1:
        print("error: --trials must be at least 1", file=sys.stderr)
        return 2
    if args.compare_reference and args.write_reference:
        print("error: --compare-reference and --write-reference are exclusive",
              file=sys.stderr)
        return 2
    if args.write_reference and args.quick:
        # A quick-grid envelope would only cover the quick axis subset, so
        # every later full-grid comparison would fail on the missing
        # points; references must come from full runs (see README).
        print("error: --write-reference needs a full run (drop --quick)",
              file=sys.stderr)
        return 2
    figures = list(args.figure) if args.figure else list(available_figures())
    trials = args.trials if args.trials is not None else (2 if args.quick else 5)
    ab_mode = args.ab_compare
    if ab_mode is None:
        ab_mode = "both" if args.quick else "none"

    runner = MonteCarloRunner(
        trials=trials,
        base_seed=args.seed,
        max_workers=args.workers,
        cache_dir=args.cache,
        progress=lambda message: print(f"  [mc] {message}", file=sys.stderr),
    )
    report = ValidationReport()
    for name in figures:
        spec = get_figure(name)
        result = runner.run(spec, quick=args.quick)
        figure_report = FigureReport(result=result)
        if args.compare_reference:
            envelope_path = valid_json_path(name, args.reference_dir)
            try:
                envelope = load_envelope(envelope_path)
            except (OSError, ValueError, KeyError) as error:
                print(f"error: cannot read envelope {envelope_path}: {error}",
                      file=sys.stderr)
                return 2
            figure_report.checks = check_against_envelope(result, envelope, spec)
            figure_report.compared = True
        if args.write_reference:
            path = write_envelope(result, args.reference_dir)
            print(f"  envelope written: {path}", file=sys.stderr)
        report.add(figure_report)

    if ab_mode != "none":
        link_figures = [n for n in figures if get_figure(n).kind == "link"]
        if not link_figures:
            print("note: --ab-compare skipped (no link figure selected)")
        else:
            variants = ["fast-path", "solver"] if ab_mode == "both" else [ab_mode]
            for variant in variants:
                # Reusing the Monte-Carlo runner lets the A/B baseline come
                # straight out of its record memo: only the reference
                # variant's scenarios are simulated here.
                report.ab_rows.extend(
                    ab_compare(
                        link_figures[0],
                        variant=variant,
                        quick=args.quick,
                        runner=runner,
                    )
                )

    print(report.to_markdown())
    if args.json_path:
        path = report.save(args.json_path)
        print(f"report written to {path}")
    gated = args.compare_reference or bool(report.ab_rows)
    if gated:
        if report.passed:
            print("validation gate passed")
        else:
            print("VALIDATION GATE FAILED:", file=sys.stderr)
            for fig in report.figures:
                for check in fig.checks:
                    if not check.passed:
                        print(f"  {fig.result.figure}: {check.describe()}",
                              file=sys.stderr)
            for row in report.ab_rows:
                if not row.passed:
                    print(f"  {row.describe()}", file=sys.stderr)
            return 1
    return 0


def _run_net(args) -> int:
    import json

    try:
        forced = dict(
            calibration_packets_per_point=args.packets_per_point,
            calibration_progress=args.packets_per_point is not None,
        )
        if args.quick:
            forced["duration_s"] = min(args.duration, 30.0)
        scenario = _net_scenario_from_args(args, **forced)
        simulator = scenario.build_simulator()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = simulator.run(traffic=scenario.build_traffic(), progress=args.progress)
    print(scenario.describe())
    print(result.describe())
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"  results written to       : {args.json_path}")
    return 0


def _trace_capture(args) -> int:
    from repro.trace import capture_scenario, save_trace

    scenario = _net_scenario_from_args(args)
    result, trace = capture_scenario(scenario, progress=args.progress)
    print(scenario.describe())
    print(result.describe())
    print(trace.summary())
    path = save_trace(trace, args.out)
    print(f"  trace written to         : {path}")
    return 0


def _trace_replay(args) -> int:
    import json

    from repro.trace import (
        check_roundtrip,
        load_trace,
        qoe_report,
        replay_trace,
        scenario_from_trace,
    )
    from repro.utils.jsonsafe import nan_to_none

    trace = load_trace(args.trace_path)
    overrides = {
        key: value
        for key in ("link", "routing", "arq", "seed")
        if (value := getattr(args, key)) is not None
    }
    if args.check_roundtrip:
        if overrides:
            print("error: --check-roundtrip replays the captured stack; "
                  "drop the stack overrides", file=sys.stderr)
            return 2
        identical, captured, replayed = check_roundtrip(trace)
        if identical:
            print(f"roundtrip OK: replay reproduced all "
                  f"{len(replayed)} capture metrics bit for bit")
            return 0
        print("ROUNDTRIP FAILED: replayed metrics differ from capture:",
              file=sys.stderr)
        for key in sorted(set(captured) | set(replayed)):
            if captured.get(key) != replayed.get(key):
                print(f"  {key}: captured {captured.get(key)!r} "
                      f"!= replayed {replayed.get(key)!r}", file=sys.stderr)
        return 1
    scenario = scenario_from_trace(trace, **overrides)
    result = replay_trace(trace, scenario=scenario, progress=args.progress)
    report = qoe_report(result.metrics)
    print(scenario.describe())
    print(result.describe())
    print(report.summary())
    if args.json_path:
        payload = {
            "scenario": scenario.to_dict(),
            "metrics": result.to_dict(),
            "qoe": report.to_dict(),
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(nan_to_none(payload), handle, indent=2)
        print(f"  results written to       : {args.json_path}")
    return 0


def _trace_synth(args) -> int:
    from repro.trace import PopulationWorkload, save_trace, synthesize_trace

    scenario = _net_scenario_from_args(args, traffic="population")
    workload = PopulationWorkload(
        duration_s=args.duration,
        base_rate_msgs_per_s=args.rate,
        group_size=args.group_size,
        activity_duty=args.duty,
        mean_session_s=args.session,
        diurnal_period_s=(
            args.diurnal_period if args.diurnal_period is not None
            else args.duration / 2.0
        ),
        diurnal_depth=args.diurnal_depth,
        size_mean_bits=args.size_mean,
        size_sigma=args.size_sigma,
    )
    trace = synthesize_trace(
        workload,
        scenario.build_topology(),
        seed=args.seed,
        meta={"scenario": scenario.to_dict()},
    )
    print(scenario.describe())
    print(trace.summary())
    path = save_trace(trace, args.out)
    print(f"  trace written to         : {path}")
    return 0


def _trace_compare(args) -> int:
    import json

    from repro.trace import (
        DEFAULT_LATENCY_TAU_S,
        DEFAULT_SOS_DEADLINE_S,
        compare_stacks,
        load_trace,
        scenario_from_trace,
    )
    from repro.utils.jsonsafe import nan_to_none

    trace = load_trace(args.trace_path)
    base = scenario_from_trace(trace)

    def side_scenario(side: str):
        overrides = {
            key: value
            for key in ("link", "routing", "arq")
            if (value := getattr(args, f"{side}_{key}")) is not None
        }
        if side == "b" and not overrides:
            overrides = {"link": "physical"}
        return base.replace(**overrides) if overrides else base

    delta = compare_stacks(
        trace,
        scenario_a=side_scenario("a"),
        scenario_b=side_scenario("b"),
        latency_tau_s=(
            args.tau if args.tau is not None else DEFAULT_LATENCY_TAU_S
        ),
        sos_deadline_s=(
            args.sos_deadline if args.sos_deadline is not None
            else DEFAULT_SOS_DEADLINE_S
        ),
    )
    print(f"trace: {trace.summary()}")
    print(delta.to_markdown())
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(nan_to_none(delta.to_dict()), handle, indent=2)
        print(f"  comparison written to    : {args.json_path}")
    return 0


def _run_trace(args) -> int:
    handlers = {
        "capture": _trace_capture,
        "replay": _trace_replay,
        "synth": _trace_synth,
        "compare": _trace_compare,
    }
    try:
        return handlers[args.trace_command](args)
    except (OSError, ValueError) as error:
        # Bad scenario parameters, unreadable/foreign trace files, traces
        # missing the metadata a mode needs -- all user-input problems.
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_sos(args) -> int:
    site = SITE_CATALOG[args.site]
    channel = build_channel(site=site, distance_m=args.distance, seed=args.seed)
    service = SosBeaconService(channel, bit_rate_bps=args.rate, seed=args.seed + 1)
    receptions = service.broadcast_many(args.user_id, args.repetitions)
    correct = sum(r.user_id == args.user_id for r in receptions)
    errors = sum(r.bit_errors for r in receptions)
    confidence = float(np.mean([r.mean_confidence_db for r in receptions]))
    print(f"site={site.name} distance={args.distance} m rate={args.rate} bps "
          f"user_id={args.user_id} repetitions={args.repetitions}")
    print(f"  beacon duration          : {service.beacon_duration_s:.2f} s")
    print(f"  correctly decoded IDs    : {correct}/{args.repetitions}")
    print(f"  bit errors               : {errors}/{6 * args.repetitions}")
    print(f"  mean tone margin         : {confidence:.1f} dB")
    return 0


def _run_mac(args) -> int:
    transmitters = [
        TransmitterConfig(name=f"tx{i}", distance_to_receiver_m=5.0 + 2.5 * i,
                          num_packets=args.packets)
        for i in range(args.transmitters)
    ]
    simulator = MacNetworkSimulator(transmitters, carrier_sense=not args.no_carrier_sense)
    result = simulator.run(seed=args.seed)
    mode = "disabled" if args.no_carrier_sense else "enabled"
    print(f"{args.transmitters} transmitters x {args.packets} packets, carrier sense {mode}")
    print(f"  collided packets         : {result.num_collided}/{result.num_packets} "
          f"({result.collision_fraction:.1%})")
    for config in transmitters:
        print(f"    {config.name}: {result.collision_fraction_for(config.name):.1%}")
    return 0


def _run_chaos(args) -> int:
    import json

    from repro.faults import ChurnProcess, FaultSchedule, load_schedule
    from repro.utils.jsonsafe import nan_to_none

    if args.faults:
        schedule = load_schedule(args.faults)
    else:
        # Protect the SOS source / default sink so the A/B compares
        # repair quality, not luck about whether the endpoints survived.
        protect = ["n0"]
        if args.destination and args.destination not in protect:
            protect.append(args.destination)
        schedule = FaultSchedule(
            churn=ChurnProcess(
                rate_per_node_per_s=args.churn_rate,
                mean_downtime_s=args.mean_downtime,
                end_s=args.duration,
                seed=args.fault_seed,
                protect=tuple(protect),
            )
        )
    try:
        base = _net_scenario_from_args(args, faults_json="")
        names = tuple(base.build_topology().names)
        num_events = len(schedule.expand(names))
        results = {}
        for key, repair in (("repair_on", True), ("repair_off", False)):
            results[key] = base.with_faults(schedule.with_repair(repair)).run()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    on, off = results["repair_on"].metrics, results["repair_off"].metrics
    print(base.describe())
    print(f"fault schedule: {num_events} events "
          f"(beacon {schedule.beacon_interval_s:g} s x {schedule.miss_threshold})")
    print(f"  {'':26s}{'repair on':>12s}{'repair off':>12s}")
    print(f"  {'delivered / offered':26s}"
          f"{f'{on.delivered}/{on.offered}':>12s}"
          f"{f'{off.delivered}/{off.offered}':>12s}")
    print(f"  {'packet delivery ratio':26s}"
          f"{on.packet_delivery_ratio:>12.1%}{off.packet_delivery_ratio:>12.1%}")
    print(f"  {'node crashes':26s}{on.node_crashes:>12d}{off.node_crashes:>12d}")
    print(f"  {'route repairs':26s}{len(on.repair_times_s):>12d}"
          f"{len(off.repair_times_s):>12d}")
    repair_time = (
        f"{on.mean_time_to_repair_s:.1f} s"
        if on.repair_times_s
        else "n/a"
    )
    print(f"  {'mean time to repair':26s}{repair_time:>12s}{'n/a':>12s}")
    for title, attr in (("drops", "drop_reasons"), ("aborts", "abort_reasons")):
        reasons = sorted(set(getattr(on, attr)) | set(getattr(off, attr)))
        for reason in reasons:
            print(f"  {f'{title}: {reason}':26s}"
                  f"{getattr(on, attr).get(reason, 0):>12d}"
                  f"{getattr(off, attr).get(reason, 0):>12d}")
    if args.json_path:
        payload = {
            "scenario": base.to_dict(),
            "schedule": schedule.to_dict(),
            "repair_on": results["repair_on"].to_dict(),
            "repair_off": results["repair_off"].to_dict(),
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(nan_to_none(payload), handle, indent=2, sort_keys=True)
        print(f"  results written to       : {args.json_path}")
    return 0


def _run_sites(_args) -> int:
    for site in SITE_CATALOG.values():
        print(f"{site.name:7s} depth {site.water_depth_m:4.1f} m  "
              f"max range {site.max_range_m:5.0f} m  "
              f"noise {site.noise_level_db:5.1f} dB  -- {site.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli``."""
    args = build_parser().parse_args(argv)
    handlers = {
        "link": _run_link,
        "sweep": _run_sweep,
        "serve": _run_serve,
        "jobs": _run_jobs,
        "net": _run_net,
        "trace": _run_trace,
        "bench": _run_bench,
        "validate": _run_validate,
        "sos": _run_sos,
        "chaos": _run_chaos,
        "mac": _run_mac,
        "sites": _run_sites,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
