"""Link layer: full protocol exchanges over simulated channels.

:class:`~repro.link.session.LinkSession` runs the complete post-preamble
feedback protocol of Fig. 5 between a transmitter (Alice) and a receiver
(Bob) across a forward and a backward simulated channel, and collects the
statistics the paper's evaluation reports (selected bitrate, packet error
rate, coded-stream bit error rate, preamble detection rate, feedback error
rate, channel-stability SNR probes).
"""

from repro.link.session import LinkSession, LinkStatistics, PacketResult
from repro.link.stats import empirical_cdf, median, summarize_packets

__all__ = [
    "LinkSession",
    "LinkStatistics",
    "PacketResult",
    "summarize_packets",
    "empirical_cdf",
    "median",
]
