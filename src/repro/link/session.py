"""Full protocol exchanges between Alice (transmitter) and Bob (receiver).

:class:`LinkSession` drives the sequence of Fig. 5 of the paper over a pair
of simulated channels:

1. Alice transmits the preamble and the receiver-ID header.
2. Bob detects the preamble, estimates per-subcarrier SNR, runs the band
   adaptation algorithm and answers with the two-tone feedback symbol.
3. Alice decodes the feedback and transmits the data burst (training symbol
   plus data symbols) inside the selected band, with the preamble and a
   silence gap in front so Bob's preamble synchronization also serves the
   data symbols.
4. Bob synchronizes, equalizes and decodes the data; bit and packet errors
   are recorded.

The fixed-bandwidth baselines reuse the same machinery but skip the
adaptation/feedback phase and always use their fixed band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.channel import UnderwaterAcousticChannel
from repro.core.adaptation import BandSelection
from repro.core.baselines import FixedBandScheme
from repro.core.modem import AquaModem
from repro.link.stats import empirical_cdf
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class PacketResult:
    """Outcome of one protocol exchange.

    Attributes
    ----------
    delivered:
        ``True`` when the payload was decoded without any bit error.
    preamble_detected:
        Whether Bob's detector found the preamble of the data packet.
    feedback_ok:
        Whether Alice decoded a feedback symbol at all (always ``True`` for
        fixed-band schemes, which need no feedback).
    feedback_exact:
        Whether the band Alice decoded matches the band Bob selected.
    receiver_band:
        The band Bob selected (or the fixed band for baseline schemes).
    transmitter_band:
        The band Alice used for encoding.
    bit_errors, num_payload_bits:
        Payload bit errors after decoding.
    coded_bit_errors, num_coded_bits:
        Errors in the coded bit stream before Viterbi decoding (the
        "uncoded BER" the paper reports).
    coded_bitrate_bps:
        The information bitrate implied by the selected band.
    min_band_snr_db:
        Minimum estimated SNR inside the selected band (from the preamble).
    detection_metric:
        Fine (sliding-correlation) detection metric of the data packet.
    """

    delivered: bool
    preamble_detected: bool
    feedback_ok: bool
    feedback_exact: bool
    receiver_band: BandSelection | None
    transmitter_band: BandSelection | None
    bit_errors: int
    num_payload_bits: int
    coded_bit_errors: int
    num_coded_bits: int
    coded_bitrate_bps: float
    min_band_snr_db: float
    detection_metric: float

    @property
    def is_error(self) -> bool:
        """Whether the packet counts as erroneous (any payload bit wrong)."""
        return not self.delivered


@dataclass(frozen=True)
class _StatisticsSnapshot:
    """Per-packet metrics of a :class:`LinkStatistics` as numpy columns.

    Built once per distinct result count, so the aggregate properties stop
    re-running ``sum(...)`` generators over the packet list on every access
    (sweep tables and benchmark loops read them repeatedly).
    """

    num_packets: int
    is_error: np.ndarray
    bit_errors: np.ndarray
    num_payload_bits: np.ndarray
    coded_bit_errors: np.ndarray
    num_coded_bits: np.ndarray
    preamble_detected: np.ndarray
    feedback_bad: np.ndarray
    coded_bitrates_bps: np.ndarray
    min_band_snrs_db: np.ndarray

    @classmethod
    def build(cls, results: list[PacketResult]) -> "_StatisticsSnapshot":
        return cls(
            num_packets=len(results),
            is_error=np.array([r.is_error for r in results], dtype=bool),
            bit_errors=np.array([r.bit_errors for r in results], dtype=np.int64),
            num_payload_bits=np.array([r.num_payload_bits for r in results], dtype=np.int64),
            coded_bit_errors=np.array([r.coded_bit_errors for r in results], dtype=np.int64),
            num_coded_bits=np.array([r.num_coded_bits for r in results], dtype=np.int64),
            preamble_detected=np.array([r.preamble_detected for r in results], dtype=bool),
            feedback_bad=np.array(
                [(not r.feedback_ok) or (not r.feedback_exact) for r in results], dtype=bool
            ),
            coded_bitrates_bps=np.array([r.coded_bitrate_bps for r in results], dtype=float),
            min_band_snrs_db=np.array([r.min_band_snr_db for r in results], dtype=float),
        )


@dataclass
class LinkStatistics:
    """Aggregated statistics over many packets."""

    results: list[PacketResult] = field(default_factory=list)
    _snapshot_cache: _StatisticsSnapshot | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _snapshot_tail: PacketResult | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_results(cls, results: list[PacketResult]) -> "LinkStatistics":
        """Build a statistics object from a list of packet results."""
        return cls(results=list(results))

    def add(self, result: PacketResult) -> None:
        """Record one more packet."""
        self.results.append(result)

    def _snapshot(self) -> _StatisticsSnapshot:
        """Return the cached numpy view, rebuilding it when packets changed.

        Staleness is detected via the result count plus the identity of the
        last packet (a held reference, so ``is`` cannot be fooled by address
        reuse), which covers the supported usage (``add``/``extend``-style
        growth and truncation/replacement at the tail).  Replacing an
        *interior* element of ``results`` in place while keeping both ends
        intact is not detected; treat the list as append-only.
        """
        cache = self._snapshot_cache
        tail = self.results[-1] if self.results else None
        if (
            cache is None
            or cache.num_packets != len(self.results)
            or self._snapshot_tail is not tail
        ):
            cache = _StatisticsSnapshot.build(self.results)
            self._snapshot_cache = cache
            self._snapshot_tail = tail
        return cache

    # ------------------------------------------------------------------ rates
    @property
    def num_packets(self) -> int:
        """Number of packets recorded."""
        return len(self.results)

    @property
    def packet_error_rate(self) -> float:
        """Fraction of packets with at least one payload bit error."""
        snap = self._snapshot()
        if not snap.num_packets:
            return float("nan")
        return int(snap.is_error.sum()) / snap.num_packets

    @property
    def payload_bit_error_rate(self) -> float:
        """Bit error rate of the decoded payloads."""
        snap = self._snapshot()
        bits = int(snap.num_payload_bits.sum())
        if bits == 0:
            return float("nan")
        return int(snap.bit_errors.sum()) / bits

    @property
    def coded_bit_error_rate(self) -> float:
        """Bit error rate of the coded stream before Viterbi decoding."""
        snap = self._snapshot()
        bits = int(snap.num_coded_bits.sum())
        if bits == 0:
            return float("nan")
        return int(snap.coded_bit_errors.sum()) / bits

    @property
    def preamble_detection_rate(self) -> float:
        """Fraction of packets whose preamble was detected."""
        snap = self._snapshot()
        if not snap.num_packets:
            return float("nan")
        return int(snap.preamble_detected.sum()) / snap.num_packets

    @property
    def feedback_error_rate(self) -> float:
        """Fraction of packets whose feedback was missing or decoded wrongly."""
        snap = self._snapshot()
        if not snap.num_packets:
            return float("nan")
        return int(snap.feedback_bad.sum()) / snap.num_packets

    # --------------------------------------------------------------- bitrates
    @property
    def bitrates_bps(self) -> np.ndarray:
        """Selected coded bitrates of all packets with a known band."""
        rates = self._snapshot().coded_bitrates_bps
        return rates[np.isfinite(rates)]

    @property
    def median_bitrate_bps(self) -> float:
        """Median selected coded bitrate."""
        rates = self.bitrates_bps
        return float(np.median(rates)) if rates.size else float("nan")

    def bitrate_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF of the selected coded bitrates."""
        return empirical_cdf(self.bitrates_bps)

    def min_band_snrs_db(self) -> np.ndarray:
        """Minimum in-band SNR per packet (channel-stability metric)."""
        return self._snapshot().min_band_snrs_db.copy()


class LinkSession:
    """Runs packet exchanges between two devices over simulated channels."""

    def __init__(
        self,
        forward_channel: UnderwaterAcousticChannel,
        backward_channel: UnderwaterAcousticChannel | None = None,
        modem: AquaModem | None = None,
        scheme: FixedBandScheme | str = "adaptive",
        receiver_id: int = 1,
        silence_symbols: int = 2,
        randomize_every: int = 1,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.forward_channel = forward_channel
        self.backward_channel = backward_channel or forward_channel.reverse()
        self.modem = modem or AquaModem()
        self.scheme = scheme
        self.receiver_id = int(receiver_id)
        self.silence_symbols = int(silence_symbols)
        self.randomize_every = max(0, int(randomize_every))
        self._rng = ensure_rng(seed)
        self._packet_counter = 0
        # Per-session packet-pipeline state reused across packets: the
        # preamble+header waveform and the silence gap are deterministic for
        # a session, so :meth:`run_packets` builds them once.  (The channel
        # transfer-function and preamble template spectra live in the shared
        # caches of repro.dsp.fastconv / TemplateCorrelator.)
        self._header_cache = None
        self._silence_cache: np.ndarray | None = None
        if isinstance(scheme, str) and scheme != "adaptive":
            raise ValueError("scheme must be 'adaptive' or a FixedBandScheme")

    # ------------------------------------------------------------- properties
    @property
    def is_adaptive(self) -> bool:
        """Whether this session uses the paper's band adaptation."""
        return isinstance(self.scheme, str) and self.scheme == "adaptive"

    @property
    def payload_bits(self) -> int:
        """Payload size per packet in bits."""
        return self.modem.protocol_config.payload_bits

    def random_payload(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw a random payload of the configured size."""
        rng = rng or self._rng
        return rng.integers(0, 2, size=self.payload_bits)

    # ----------------------------------------------------------- cached state
    def _header(self):
        """The preamble + receiver-ID header waveform, built once."""
        if self._header_cache is None:
            self._header_cache = self.modem.build_preamble_and_header(self.receiver_id)
        return self._header_cache

    def _silence(self) -> np.ndarray:
        """The inter-burst silence gap, built once."""
        if self._silence_cache is None:
            silence = np.zeros(
                self.silence_symbols * self.modem.ofdm_config.extended_symbol_length
            )
            silence.setflags(write=False)
            self._silence_cache = silence
        return self._silence_cache

    # ---------------------------------------------------------------- running
    def run_packet(
        self,
        payload: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> PacketResult:
        """Run one full protocol exchange and return its outcome."""
        rng = ensure_rng(rng if rng is not None else self._rng)
        self._packet_counter += 1
        if self.randomize_every and self._packet_counter % self.randomize_every == 0:
            self.forward_channel.randomize(rng)
            self.backward_channel.randomize(rng)
        payload = self.random_payload(rng) if payload is None else np.asarray(payload, dtype=int)

        modem = self.modem
        config = modem.ofdm_config
        header = self._header()

        # ---------------------------------------------------------- phase 1+2
        receiver_band, feedback_ok, feedback_exact, transmitter_band, min_band_snr = (
            self._adaptation_phase(header, rng)
        )
        if receiver_band is None:
            return self._failed_result(payload, preamble_detected=False)
        if transmitter_band is None:
            return self._failed_result(
                payload,
                preamble_detected=True,
                receiver_band=receiver_band,
                feedback_ok=feedback_ok,
                feedback_exact=False,
                min_band_snr=min_band_snr,
            )

        # ------------------------------------------------------------ phase 3
        packet = modem.encode_data(payload, transmitter_band)
        silence = self._silence()
        full_waveform = np.concatenate([header.waveform, silence, packet.waveform])
        forward = self.forward_channel.transmit(full_waveform, rng)
        received = modem.filter_received(forward.samples)
        detection = modem.detect_preamble(received)
        if not detection.detected:
            return self._failed_result(
                payload,
                preamble_detected=False,
                receiver_band=receiver_band,
                feedback_ok=feedback_ok,
                feedback_exact=feedback_exact,
                min_band_snr=min_band_snr,
            )
        data_start = (
            detection.start_index
            + modem.preamble_generator.total_length
            + config.extended_symbol_length  # receiver-ID header symbol
            + silence.size
        )
        coded_reference = modem.decoder.coded_reference_bits(payload)
        try:
            decoded = modem.decode_data(
                received[data_start:], receiver_band, payload.size, apply_bandpass=False
            )
        except ValueError:
            # Band mismatch between the two ends can make the burst shorter
            # than the receiver expects; that is a lost packet.
            return self._failed_result(
                payload,
                preamble_detected=True,
                receiver_band=receiver_band,
                feedback_ok=feedback_ok,
                feedback_exact=feedback_exact,
                min_band_snr=min_band_snr,
                detection_metric=detection.fine_metric,
            )

        bit_errors = int(np.count_nonzero(decoded.bits != payload))
        if feedback_exact and transmitter_band.num_bins == receiver_band.num_bins:
            coded_errors = int(np.count_nonzero(decoded.hard_coded_bits != coded_reference))
        else:
            coded_errors = int(coded_reference.size)
        return PacketResult(
            delivered=bit_errors == 0,
            preamble_detected=True,
            feedback_ok=feedback_ok,
            feedback_exact=feedback_exact,
            receiver_band=receiver_band,
            transmitter_band=transmitter_band,
            bit_errors=bit_errors,
            num_payload_bits=int(payload.size),
            coded_bit_errors=coded_errors,
            num_coded_bits=int(coded_reference.size),
            coded_bitrate_bps=modem.bitrate_for_band(receiver_band),
            min_band_snr_db=min_band_snr,
            detection_metric=detection.fine_metric,
        )

    def _adaptation_phase(self, header, rng):
        """Phases 1 and 2: preamble/SNR estimation and feedback exchange."""
        modem = self.modem
        if not self.is_adaptive:
            band = self.scheme.selection(modem.ofdm_config)
            return band, True, True, band, float("nan")

        forward = self.forward_channel.transmit(header.waveform, rng)
        received = modem.filter_received(forward.samples)
        detection = modem.detect_preamble(received)
        if not detection.detected:
            return None, False, False, None, float("nan")
        estimate = modem.estimate_snr(received, detection.start_index)
        receiver_band = modem.select_band(estimate)
        min_band_snr = float(
            np.min(estimate.snr_for_band(receiver_band.start_bin, receiver_band.end_bin))
        )

        feedback_waveform = modem.build_feedback(receiver_band)
        backward = self.backward_channel.transmit(feedback_waveform, rng)
        feedback_received = modem.filter_received(backward.samples)
        feedback = modem.decode_feedback(feedback_received)
        if not feedback.found:
            return receiver_band, False, False, None, min_band_snr
        transmitter_band = modem.band_from_feedback(feedback)
        feedback_exact = (
            transmitter_band.start_bin == receiver_band.start_bin
            and transmitter_band.end_bin == receiver_band.end_bin
        )
        return receiver_band, True, feedback_exact, transmitter_band, min_band_snr

    def _failed_result(
        self,
        payload: np.ndarray,
        preamble_detected: bool,
        receiver_band: BandSelection | None = None,
        feedback_ok: bool = False,
        feedback_exact: bool = False,
        min_band_snr: float = float("nan"),
        detection_metric: float = 0.0,
    ) -> PacketResult:
        coded_bits = self.modem.decoder.coded_reference_bits(payload)
        bitrate = (
            self.modem.bitrate_for_band(receiver_band) if receiver_band is not None else float("nan")
        )
        return PacketResult(
            delivered=False,
            preamble_detected=preamble_detected,
            feedback_ok=feedback_ok,
            feedback_exact=feedback_exact,
            receiver_band=receiver_band,
            transmitter_band=None,
            bit_errors=int(payload.size),
            num_payload_bits=int(payload.size),
            coded_bit_errors=int(coded_bits.size),
            num_coded_bits=int(coded_bits.size),
            coded_bitrate_bps=bitrate,
            min_band_snr_db=min_band_snr,
            detection_metric=detection_metric,
        )

    def run_packets(
        self,
        num_packets: int,
        rng: int | np.random.Generator | None = None,
    ) -> LinkStatistics:
        """Run ``num_packets`` exchanges through the batched packet pipeline.

        The per-session state every packet needs -- the preamble+header
        waveform, the silence gap, the preamble template's conjugate
        spectrum, the channel transfer-function spectra and the modem's
        batched FEC/OFDM paths -- is derived once and reused across the
        whole batch rather than per packet.  Results are identical to
        calling :meth:`run_packet` ``num_packets`` times with the same
        generator (the protocol itself is sequential: each packet's channel
        state depends on the previous one).

        This is the entry point the experiment runner,
        :class:`repro.net.links.PhysicalLink` calibration and the benchmark
        suites drive.
        """
        if num_packets <= 0:
            raise ValueError("num_packets must be positive")
        rng = ensure_rng(rng if rng is not None else self._rng)
        stats = LinkStatistics()
        for _ in range(num_packets):
            stats.add(self.run_packet(rng=rng))
        return stats

    def run_many(
        self,
        num_packets: int,
        rng: int | np.random.Generator | None = None,
    ) -> LinkStatistics:
        """Run ``num_packets`` exchanges and return the aggregate statistics.

        Alias of :meth:`run_packets`, kept for backward compatibility.
        """
        return self.run_packets(num_packets, rng=rng)

    # --------------------------------------------------------------- probing
    def probe_channel_stability(
        self, rng: int | np.random.Generator | None = None
    ) -> float:
        """Return the Fig. 16 stability metric for one probe.

        Alice transmits a preamble; Bob selects a band from it; Alice then
        transmits a *second* preamble (after the feedback interval) and Bob
        computes the minimum SNR inside the previously selected band using
        that second preamble.  Low values mean the channel changed enough
        that the selected band now contains weak subcarriers.
        """
        rng = ensure_rng(rng if rng is not None else self._rng)
        modem = self.modem
        header = modem.preamble_generator.waveform()

        first = self.forward_channel.transmit(header, rng)
        received_first = modem.filter_received(first.samples)
        detection_first = modem.detect_preamble(received_first)
        if not detection_first.detected:
            return float("nan")
        estimate_first = modem.estimate_snr(received_first, detection_first.start_index)
        band = modem.select_band(estimate_first)

        second = self.forward_channel.transmit(header, rng)
        received_second = modem.filter_received(second.samples)
        detection_second = modem.detect_preamble(received_second)
        if not detection_second.detected:
            return float("nan")
        estimate_second = modem.estimate_snr(received_second, detection_second.start_index)
        in_band = estimate_second.snr_for_band(band.start_bin, band.end_bin)
        return float(np.min(in_band)) if in_band.size else float("nan")
