"""Statistics helpers for link-level experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def empirical_cdf(values: list[float] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_probability)`` for a CDF plot."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return np.array([]), np.array([])
    ordered = np.sort(values)
    probabilities = np.arange(1, ordered.size + 1) / ordered.size
    return ordered, probabilities


def median(values: list[float] | np.ndarray) -> float:
    """Return the median of ``values`` (NaN for an empty input)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return float("nan")
    return float(np.median(values))


@dataclass
class Counter:
    """A simple ratio counter (events over trials)."""

    events: int = 0
    trials: int = 0

    def record(self, happened: bool) -> None:
        """Record one trial."""
        self.trials += 1
        if happened:
            self.events += 1

    @property
    def rate(self) -> float:
        """Fraction of trials in which the event happened."""
        return self.events / self.trials if self.trials else float("nan")


def summarize_packets(results: list) -> dict:
    """Return a dictionary summary of a list of :class:`PacketResult`.

    Provided for quick inspection in notebooks and examples; the structured
    :class:`~repro.link.session.LinkStatistics` object is what the
    benchmarks use.
    """
    from repro.link.session import LinkStatistics  # local import to avoid a cycle

    stats = LinkStatistics.from_results(results)
    return {
        "num_packets": stats.num_packets,
        "packet_error_rate": stats.packet_error_rate,
        "bit_error_rate": stats.coded_bit_error_rate,
        "median_bitrate_bps": stats.median_bitrate_bps,
        "preamble_detection_rate": stats.preamble_detection_rate,
        "feedback_error_rate": stats.feedback_error_rate,
    }
