"""Multi-device messaging network: MAC scheduling on top of link sessions.

The paper's MAC evaluation (section 2.4, Fig. 19) measures collisions at
the timeline level; this module combines that scheduling behaviour with the
full physical-layer link so that a small *network* of divers exchanging
messages can be simulated end to end:

* every diver is a :class:`NetworkNode` with a device model, a position
  (distance to each peer) and a queue of messages to send;
* the carrier-sense MAC decides *when* each node transmits (collisions mark
  both packets as lost, as the energy of two overlapping OFDM packets is
  not separable by the single-channel receiver);
* each non-collided transmission is then resolved by running the
  post-preamble feedback protocol over the corresponding simulated channel,
  so channel errors and adaptation behaviour are still present;
* delivery is confirmed with the single-tone ACK; unacknowledged packets
  are retransmitted up to a configurable limit.

Since the :mod:`repro.net` subsystem landed, this class is a thin adapter:
the MAC timeline of each retransmission round is replayed as events on a
:class:`repro.net.scheduler.Scheduler`, the same event core the multi-hop
simulator uses, and PHY resolution happens inside those events.  For
topologies beyond one hop (relaying, routing, windowed ARQ) use
:class:`repro.net.simulator.NetworkSimulator` directly.

Reproducibility: the network derives every stochastic component from the
``seed`` given at construction.  An ``int`` (or ``None``-free) seed makes
:meth:`UnderwaterMessagingNetwork.run` deterministic *per call* -- running
the same network twice yields the identical report, where previous
revisions consumed one shared generator and drifted between calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.modem import AquaModem
from repro.devices.models import GALAXY_S9, DeviceModel
from repro.environments.factory import build_link_pair
from repro.environments.sites import LAKE, Site
from repro.link.session import LinkSession
from repro.mac.simulator import MacNetworkSimulator, TransmitterConfig
from repro.net.scheduler import Scheduler
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class QueuedMessage:
    """A message waiting in a node's transmit queue.

    Attributes
    ----------
    sender, recipient:
        Node names.
    payload_bits:
        The packet payload (16 bits for the messaging app).
    """

    sender: str
    recipient: str
    payload_bits: tuple[int, ...]


@dataclass
class NetworkNode:
    """One diver's device in the network.

    Attributes
    ----------
    name:
        Unique node name.
    device:
        The phone/watch model used by this diver.
    device_id:
        Address used in packet headers and ACKs (0-59).
    distance_to_receiver_m:
        Distance to the dive leader (the receiver in the Fig. 19 topology).
    """

    name: str
    device: DeviceModel = GALAXY_S9
    device_id: int = 0
    distance_to_receiver_m: float = 7.5
    queue: list[QueuedMessage] = field(default_factory=list)

    def enqueue(self, recipient: str, payload_bits: np.ndarray | list[int]) -> None:
        """Add a message for ``recipient`` to this node's transmit queue."""
        bits = tuple(int(b) for b in np.asarray(payload_bits, dtype=int).ravel())
        self.queue.append(QueuedMessage(self.name, recipient, bits))


@dataclass(frozen=True)
class NetworkDeliveryRecord:
    """Outcome of one queued message after MAC scheduling and PHY decoding."""

    message: QueuedMessage
    attempts: int
    collided_attempts: int
    delivered: bool
    bitrate_bps: float


@dataclass
class NetworkReport:
    """Aggregate outcome of a network run."""

    records: list[NetworkDeliveryRecord] = field(default_factory=list)
    collision_fraction: float = 0.0

    @property
    def num_messages(self) -> int:
        """Number of queued messages that were attempted."""
        return len(self.records)

    @property
    def delivery_rate(self) -> float:
        """Fraction of messages eventually delivered (after retransmissions)."""
        if not self.records:
            return float("nan")
        return sum(r.delivered for r in self.records) / len(self.records)

    @property
    def mean_attempts(self) -> float:
        """Average number of transmissions per message."""
        if not self.records:
            return float("nan")
        return float(np.mean([r.attempts for r in self.records]))


class UnderwaterMessagingNetwork:
    """A small network of divers sharing the acoustic channel.

    Parameters
    ----------
    nodes:
        The transmitting nodes (the receiver/dive leader is implicit).
    site:
        Evaluation site whose acoustics every link uses.
    carrier_sense:
        Whether the MAC uses energy-detection carrier sense.
    max_retransmissions:
        How many times an unacknowledged packet is retransmitted.
    packet_duration_s:
        Airtime of one full protocol exchange (used by the MAC scheduler).
    seed:
        Master seed.  An ``int`` (or ``None``) is re-expanded on every
        :meth:`run`, so repeated runs of the same network are identical; an
        injected :class:`numpy.random.Generator` is shared (stateful), for
        callers that deliberately correlate several components.
    """

    def __init__(
        self,
        nodes: list[NetworkNode],
        site: Site = LAKE,
        carrier_sense: bool = True,
        max_retransmissions: int = 1,
        packet_duration_s: float = 0.6,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not nodes:
            raise ValueError("the network needs at least one transmitting node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        self.nodes = {node.name: node for node in nodes}
        self.site = site
        self.carrier_sense = bool(carrier_sense)
        self.max_retransmissions = int(max_retransmissions)
        self.packet_duration_s = float(packet_duration_s)
        if seed is None:
            # Draw the run seed once so `run` stays repeatable even without
            # an explicit seed.
            seed = int(np.random.default_rng().integers(0, 2 ** 31 - 1))
        self._seed = seed
        self._modem = AquaModem()

    def _run_rng(self) -> np.random.Generator:
        """Generator for one run: fresh per call unless one was injected."""
        if isinstance(self._seed, np.random.Generator):
            return self._seed
        return ensure_rng(self._seed)

    # ------------------------------------------------------------------ MAC
    def _schedule_transmissions(
        self, attempts_per_node: dict[str, int], rng: np.random.Generator
    ):
        """Run the MAC simulator for the requested number of packets per node."""
        transmitters = [
            TransmitterConfig(
                name=name,
                distance_to_receiver_m=self.nodes[name].distance_to_receiver_m,
                num_packets=count,
            )
            for name, count in attempts_per_node.items()
            if count > 0
        ]
        if not transmitters:
            return None
        simulator = MacNetworkSimulator(
            transmitters,
            packet_duration_s=self.packet_duration_s,
            carrier_sense=self.carrier_sense,
        )
        return simulator.run(seed=int(rng.integers(0, 2 ** 31 - 1)))

    # ------------------------------------------------------------------ PHY
    def _deliver_over_phy(
        self, node: NetworkNode, message: QueuedMessage, rng: np.random.Generator
    ) -> tuple[bool, float]:
        """Run one physical-layer exchange for a non-collided transmission."""
        forward, backward = build_link_pair(
            site=self.site,
            distance_m=node.distance_to_receiver_m,
            tx_device=node.device,
            seed=int(rng.integers(0, 2 ** 31 - 1)),
        )
        session = LinkSession(
            forward, backward, modem=self._modem,
            receiver_id=node.device_id, seed=int(rng.integers(0, 2 ** 31 - 1)),
        )
        result = session.run_packet(payload=np.array(message.payload_bits))
        if not result.delivered:
            return False, result.coded_bitrate_bps
        # Delivery is confirmed with the single-tone ACK over the backward channel.
        ack = self._modem.build_ack()
        ack_received = self._modem.filter_received(backward.transmit(ack, rng).samples)
        start = 0
        stop = self._modem.ofdm_config.extended_symbol_length
        acked = self._modem.decode_ack(ack_received[start:stop + 2048][:stop])
        return bool(acked), result.coded_bitrate_bps

    # ------------------------------------------------------------------- run
    def run(self) -> NetworkReport:
        """Send every queued message and return the aggregate report.

        Each retransmission round asks the MAC simulator for a timeline,
        replays that timeline as events on a :class:`Scheduler` (the same
        discrete-event core :mod:`repro.net` uses) and resolves every
        non-collided transmission over the PHY inside its event.
        """
        rng = self._run_rng()
        scheduler = Scheduler()
        pending: dict[str, list[QueuedMessage]] = {
            name: list(node.queue) for name, node in self.nodes.items()
        }
        attempts: dict[QueuedMessage, int] = {}
        collisions: dict[QueuedMessage, int] = {}
        delivered: dict[QueuedMessage, bool] = {}
        bitrates: dict[QueuedMessage, float] = {}
        counters = {"collided": 0, "transmissions": 0}

        for _ in range(1 + self.max_retransmissions):
            remaining = {name: len(queue) for name, queue in pending.items() if queue}
            if not remaining:
                break
            schedule = self._schedule_transmissions(remaining, rng)
            if schedule is None:
                break
            # Replay the MAC timeline as scheduler events; each event maps
            # its transmission back to the sender's next queued message.
            cursors = {name: 0 for name in pending}
            next_pending: dict[str, list[QueuedMessage]] = {name: [] for name in pending}
            round_start = scheduler.now_s

            def resolve(record) -> None:
                queue = pending[record.transmitter]
                index = cursors[record.transmitter]
                if index >= len(queue):
                    return
                message = queue[index]
                cursors[record.transmitter] += 1
                attempts[message] = attempts.get(message, 0) + 1
                counters["transmissions"] += 1
                if record.collided:
                    collisions[message] = collisions.get(message, 0) + 1
                    counters["collided"] += 1
                    success = False
                    bitrate = float("nan")
                else:
                    node = self.nodes[record.transmitter]
                    success, bitrate = self._deliver_over_phy(node, message, rng)
                delivered[message] = delivered.get(message, False) or success
                bitrates[message] = bitrate
                if not delivered[message]:
                    next_pending[record.transmitter].append(message)

            for record in schedule.transmissions:
                scheduler.at(
                    round_start + record.start_time_s,
                    lambda record=record: resolve(record),
                )
            scheduler.run()
            pending = next_pending

        records = []
        for node in self.nodes.values():
            for message in node.queue:
                records.append(NetworkDeliveryRecord(
                    message=message,
                    attempts=attempts.get(message, 0),
                    collided_attempts=collisions.get(message, 0),
                    delivered=delivered.get(message, False),
                    bitrate_bps=bitrates.get(message, float("nan")),
                ))
        collision_fraction = (
            counters["collided"] / counters["transmissions"]
            if counters["transmissions"] else 0.0
        )
        return NetworkReport(records=records, collision_fraction=collision_fraction)
