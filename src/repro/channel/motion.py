"""Device motion: Doppler and channel drift.

The paper's mobility evaluation (Fig. 14) moves one phone back and forth /
up and down on a rope, quantified by average accelerometer magnitudes of
2.5 m/s^2 (slow) and 5.1 m/s^2 (fast).  Two effects matter for the modem:

1. *Doppler*: the relative radial speed time-scales the waveform.  At
   human swimming speeds (< 2 m/s relative) the shift is a few Hz, well
   below the 50 Hz subcarrier spacing.
2. *Channel drift*: the multipath geometry changes during a packet, so the
   channel seen by the preamble differs from the one seen by the data
   symbols, and the first data symbol differs from the last.  This is what
   differential coding and the conservative band selection protect against.

:class:`MotionModel` produces per-packet random draws of radial speed and a
smooth perturbation trajectory used by the channel to morph its impulse
response over the duration of a transmission.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class MotionState:
    """One realization of device motion during a transmission.

    Attributes
    ----------
    radial_speed_m_s:
        Relative speed along the line between the devices (positive means
        closing).
    drift_rate_per_s:
        Fractional change of each multipath tap per second -- how quickly
        the channel decorrelates.
    displacement_m:
        Net displacement over the packet (diagnostic).
    """

    radial_speed_m_s: float
    drift_rate_per_s: float
    displacement_m: float


@dataclass(frozen=True)
class MotionModel:
    """Statistical model of diver hand/arm motion.

    Parameters
    ----------
    name:
        Label ("static", "slow", "fast" in the paper's evaluation).
    acceleration_m_s2:
        Average accelerometer magnitude after gravity compensation.
    max_speed_m_s:
        Cap on the radial speed (safe diver motion stays below ~1-2 m/s).
    channel_drift_rate_per_s:
        How quickly multipath tap gains drift, as a fraction per second.
    """

    name: str
    acceleration_m_s2: float
    max_speed_m_s: float
    channel_drift_rate_per_s: float

    def sample(self, rng: int | np.random.Generator | None = None, interval_s: float = 0.25) -> MotionState:
        """Draw a motion state for one packet exchange lasting ``interval_s``."""
        rng = ensure_rng(rng)
        if self.acceleration_m_s2 <= 0:
            return MotionState(0.0, 0.0, 0.0)
        # Speed reached by accelerating for a random fraction of the interval,
        # with random direction, capped at the safe diver speed.
        speed = self.acceleration_m_s2 * float(rng.uniform(0.0, interval_s))
        speed = min(speed, self.max_speed_m_s)
        direction = 1.0 if rng.random() < 0.5 else -1.0
        radial = direction * speed * float(rng.uniform(0.3, 1.0))
        displacement = abs(radial) * interval_s
        return MotionState(
            radial_speed_m_s=radial,
            drift_rate_per_s=self.channel_drift_rate_per_s,
            displacement_m=displacement,
        )


#: Motion presets matching the paper's mobility evaluation.
STATIC_MOTION = MotionModel("static", 0.0, 0.0, 0.0)
SLOW_MOTION = MotionModel("slow", 2.5, 1.0, 0.35)
FAST_MOTION = MotionModel("fast", 5.1, 2.0, 0.9)

MOTION_PRESETS: dict[str, MotionModel] = {
    "static": STATIC_MOTION,
    "slow": SLOW_MOTION,
    "fast": FAST_MOTION,
}
