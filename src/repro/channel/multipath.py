"""Shallow-water multipath via the image (mirror) method.

The evaluation sites of the paper are shallow (2-15 m deep) bodies of water
where the dominant propagation effects are reflections from the surface and
the bottom (and, at the lake site, from walls and pillars).  The image
method models the channel as a sum of discrete paths: the direct path plus
paths that bounce ``s`` times off the surface and ``b`` times off the
bottom, each with

* a geometric length determined by mirroring the source across the
  boundaries,
* an amplitude reduced by spreading/absorption along that length and by
  the product of the reflection losses, with the pressure-release surface
  contributing a sign flip per surface bounce, and
* a propagation delay ``length / c``.

The resulting tapped-delay-line impulse response exhibits exactly the
frequency-selective fading with deep notches that drives the paper's band
adaptation (Fig. 3), and the notch positions move when the geometry or the
reflection losses change -- reproducing the location dependence of Fig. 3b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.physics import path_amplitude, sound_speed_m_s
from repro.dsp.resample import fractional_delay
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class PropagationPath:
    """One discrete propagation path between transmitter and receiver.

    Attributes
    ----------
    delay_s:
        One-way propagation delay in seconds.
    amplitude:
        Linear amplitude (sign included: surface bounces flip polarity).
    num_surface_bounces, num_bottom_bounces:
        Number of interactions with each boundary.
    length_m:
        Geometric path length in metres.
    """

    delay_s: float
    amplitude: float
    num_surface_bounces: int
    num_bottom_bounces: int
    length_m: float


@dataclass(frozen=True)
class ImageMethodGeometry:
    """Geometry of a shallow-water link.

    Attributes
    ----------
    water_depth_m:
        Total depth of the water column.
    tx_depth_m, rx_depth_m:
        Depths of the transmitter and receiver below the surface.
    horizontal_range_m:
        Horizontal separation between the devices.
    """

    water_depth_m: float
    tx_depth_m: float
    rx_depth_m: float
    horizontal_range_m: float

    def __post_init__(self) -> None:
        require_positive(self.water_depth_m, "water_depth_m")
        require_positive(self.horizontal_range_m, "horizontal_range_m")
        for name, depth in (("tx_depth_m", self.tx_depth_m), ("rx_depth_m", self.rx_depth_m)):
            if not 0 < depth < self.water_depth_m:
                raise ValueError(
                    f"{name} must lie strictly inside the water column "
                    f"(0, {self.water_depth_m}), got {depth}"
                )


@dataclass
class MultipathModel:
    """Image-method multipath model for one site geometry.

    Parameters
    ----------
    geometry:
        Link geometry (depths and range).
    surface_loss_db:
        Loss per surface reflection (roughness-dependent; calm water is
        nearly lossless but flips polarity).
    bottom_loss_db:
        Loss per bottom reflection (sediment-dependent).
    max_bounces:
        Maximum total number of boundary interactions per modelled path.
    extra_reflectors:
        Number of additional discrete reflectors (walls, pillars, moored
        boats) to add as randomized late arrivals -- the lake and museum
        sites of the paper show this behaviour.
    sound_speed_m_s:
        Speed of sound used to convert path lengths into delays.
    seed:
        Seed for the randomized extra reflectors.
    """

    geometry: ImageMethodGeometry
    surface_loss_db: float = 1.0
    bottom_loss_db: float = 6.0
    max_bounces: int = 4
    extra_reflectors: int = 0
    sound_speed_m_s: float = field(default_factory=sound_speed_m_s)
    seed: int | None = None

    def paths(self) -> list[PropagationPath]:
        """Return the discrete propagation paths, earliest first.

        Standard image-method enumeration: for every integer image order
        ``m`` there are two image families, one with vertical separation
        ``2 m D + (zr - zs)`` (equal numbers of surface and bottom bounces)
        and one with ``2 m D + (zr + zs)`` (one extra surface bounce for
        ``m >= 0``, otherwise one extra bottom bounce).  ``m = 0`` of the
        first family is the direct path.
        """
        geom = self.geometry
        depth = geom.water_depth_m
        zs, zr = geom.tx_depth_m, geom.rx_depth_m
        paths: list[PropagationPath] = []
        max_order = max(1, (self.max_bounces + 1) // 2)
        for m in range(-max_order, max_order + 1):
            families = (
                # (vertical separation, surface bounces, bottom bounces)
                (2.0 * depth * m + (zr - zs), abs(m), abs(m)),
                (
                    2.0 * depth * m + (zr + zs),
                    m + 1 if m >= 0 else abs(m) - 1,
                    m if m >= 0 else abs(m),
                ),
            )
            for vertical, surface_bounces, bottom_bounces in families:
                total_bounces = surface_bounces + bottom_bounces
                if total_bounces > self.max_bounces:
                    continue
                length = float(np.hypot(geom.horizontal_range_m, vertical))
                amplitude = path_amplitude(length)
                amplitude *= 10.0 ** (-(surface_bounces * self.surface_loss_db
                                        + bottom_bounces * self.bottom_loss_db) / 20.0)
                if surface_bounces % 2 == 1:
                    amplitude = -amplitude
                paths.append(
                    PropagationPath(
                        delay_s=length / self.sound_speed_m_s,
                        amplitude=amplitude,
                        num_surface_bounces=surface_bounces,
                        num_bottom_bounces=bottom_bounces,
                        length_m=length,
                    )
                )
        paths.extend(self._extra_reflector_paths())
        paths.sort(key=lambda p: p.delay_s)
        return self._deduplicate(paths)

    def _extra_reflector_paths(self) -> list[PropagationPath]:
        """Late arrivals from walls / pillars / moored boats."""
        if self.extra_reflectors <= 0:
            return []
        rng = ensure_rng(self.seed)
        geom = self.geometry
        direct = float(np.hypot(geom.horizontal_range_m, geom.tx_depth_m - geom.rx_depth_m))
        paths = []
        for _ in range(self.extra_reflectors):
            detour = float(rng.uniform(1.5, 12.0))
            length = direct + detour
            reflection_loss_db = float(rng.uniform(4.0, 12.0))
            amplitude = path_amplitude(length) * 10.0 ** (-reflection_loss_db / 20.0)
            if rng.random() < 0.5:
                amplitude = -amplitude
            paths.append(
                PropagationPath(
                    delay_s=length / self.sound_speed_m_s,
                    amplitude=amplitude,
                    num_surface_bounces=0,
                    num_bottom_bounces=0,
                    length_m=length,
                )
            )
        return paths

    @staticmethod
    def _deduplicate(paths: list[PropagationPath]) -> list[PropagationPath]:
        """Merge paths with essentially identical delays."""
        unique: list[PropagationPath] = []
        for path in paths:
            if unique and abs(path.delay_s - unique[-1].delay_s) < 1e-9:
                merged = PropagationPath(
                    delay_s=unique[-1].delay_s,
                    amplitude=unique[-1].amplitude + path.amplitude,
                    num_surface_bounces=unique[-1].num_surface_bounces,
                    num_bottom_bounces=unique[-1].num_bottom_bounces,
                    length_m=unique[-1].length_m,
                )
                unique[-1] = merged
            else:
                unique.append(path)
        return unique

    # ------------------------------------------------------------------ output
    def impulse_response(
        self,
        sample_rate_hz: float,
        normalize_delay: bool = True,
        max_taps: int | None = None,
    ) -> np.ndarray:
        """Return the sampled impulse response of the multipath channel.

        Parameters
        ----------
        sample_rate_hz:
            Sampling rate of the waveforms the response will filter.
        normalize_delay:
            When ``True`` (default) the earliest path is placed at delay 0
            so the bulk propagation delay is removed (the link simulator
            accounts for absolute propagation delay separately).
        max_taps:
            Optional cap on the response length in samples.
        """
        require_positive(sample_rate_hz, "sample_rate_hz")
        paths = self.paths()
        if not paths:
            raise RuntimeError("multipath model produced no paths")
        first_delay = paths[0].delay_s if normalize_delay else 0.0
        relative_delays = [(p.delay_s - first_delay) * sample_rate_hz for p in paths]
        length = int(np.ceil(max(relative_delays))) + 2
        if max_taps is not None:
            length = min(length, int(max_taps))
        response = np.zeros(max(length, 1))
        for path, delay in zip(paths, relative_delays):
            index = int(np.floor(delay))
            if index >= response.size:
                continue
            frac = delay - index
            # Linear interpolation spreads the tap over two samples, which is
            # the time-domain counterpart of fractional_delay().
            response[index] += path.amplitude * (1.0 - frac)
            if index + 1 < response.size:
                response[index + 1] += path.amplitude * frac
        return response

    def frequency_response_db(
        self, frequencies_hz: np.ndarray, sample_rate_hz: float = 48000.0
    ) -> np.ndarray:
        """Return the channel magnitude response (dB) at given frequencies."""
        impulse = self.impulse_response(sample_rate_hz)
        n_fft = int(2 ** np.ceil(np.log2(max(impulse.size * 4, 1024))))
        spectrum = np.fft.rfft(impulse, n=n_fft)
        grid = np.fft.rfftfreq(n_fft, d=1.0 / sample_rate_hz)
        frequencies_hz = np.asarray(frequencies_hz, dtype=float)
        magnitude = np.interp(frequencies_hz, grid, np.abs(spectrum))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-12))

    def delay_spread_s(self) -> float:
        """Return the delay spread (last minus first arrival) in seconds."""
        paths = self.paths()
        return paths[-1].delay_s - paths[0].delay_s

    def direct_path_delay_s(self) -> float:
        """Return the absolute delay of the earliest arrival in seconds."""
        return self.paths()[0].delay_s

    def apply(self, samples: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Convolve ``samples`` with the (delay-normalized) impulse response."""
        impulse = self.impulse_response(sample_rate_hz)
        return np.convolve(np.asarray(samples, dtype=float), impulse)[: len(samples)]

    def delayed_apply(self, samples: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Apply the channel including the absolute propagation delay."""
        out = self.apply(samples, sample_rate_hz)
        delay_samples = self.direct_path_delay_s() * sample_rate_hz
        return fractional_delay(out, delay_samples)
