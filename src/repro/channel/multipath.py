"""Shallow-water multipath via the image (mirror) method.

The evaluation sites of the paper are shallow (2-15 m deep) bodies of water
where the dominant propagation effects are reflections from the surface and
the bottom (and, at the lake site, from walls and pillars).  The image
method models the channel as a sum of discrete paths: the direct path plus
paths that bounce ``s`` times off the surface and ``b`` times off the
bottom, each with

* a geometric length determined by mirroring the source across the
  boundaries,
* an amplitude reduced by spreading/absorption along that length and by
  the product of the reflection losses, with the pressure-release surface
  contributing a sign flip per surface bounce, and
* a propagation delay ``length / c``.

The resulting tapped-delay-line impulse response exhibits exactly the
frequency-selective fading with deep notches that drives the paper's band
adaptation (Fig. 3), and the notch positions move when the geometry or the
reflection losses change -- reproducing the location dependence of Fig. 3b.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.channel.physics import absorption_db_per_km, sound_speed_m_s
from repro.dsp.resample import fractional_delay
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive

#: Thorp absorption at the 2.5 kHz band centre -- the constant
#: :func:`repro.channel.physics.path_amplitude` re-derives on every call.
#: Hoisted so the per-path loss expressions in :meth:`MultipathModel._tap_data`
#: stay bit-identical to ``path_amplitude(length)`` (same float operations)
#: while skipping the scalar-numpy call chain on the per-packet drifted
#: impulse-response rebuilds; the identity is pinned by
#: tests/test_fastpath_golden.py.
_ALPHA_2500_DB_PER_KM = absorption_db_per_km(2500.0)

#: Static image-family structure per ``max_bounces``: interleaved image
#: orders, the per-slot family flag and bounce counts, pre-filtered by the
#: bounce budget.  Only the vertical separations depend on the geometry, so
#: the per-packet drifted-channel rebuilds reuse these arrays.
_FAMILY_CACHE: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}


def _family_structure(max_bounces: int):
    cached = _FAMILY_CACHE.get(max_bounces)
    if cached is None:
        max_order = max(1, (max_bounces + 1) // 2)
        orders = np.arange(-max_order, max_order + 1, dtype=float)
        abs_orders = np.abs(orders).astype(int)
        # Interleave (family 1, family 2) per order, matching the original
        # nested-loop enumeration order exactly.
        orders_interleaved = np.repeat(orders, 2)
        is_family2 = np.tile(np.array([False, True]), orders.size)
        surfaces = np.where(
            is_family2,
            np.repeat(np.where(orders >= 0, abs_orders + 1, abs_orders - 1), 2),
            np.repeat(abs_orders, 2),
        )
        bottoms = np.repeat(abs_orders, 2)
        keep = surfaces + bottoms <= max_bounces
        cached = (
            orders_interleaved[keep],
            is_family2[keep],
            surfaces[keep],
            bottoms[keep],
        )
        for array in cached:
            array.setflags(write=False)
        _FAMILY_CACHE[max_bounces] = cached
    return cached


@dataclass(frozen=True)
class PropagationPath:
    """One discrete propagation path between transmitter and receiver.

    Attributes
    ----------
    delay_s:
        One-way propagation delay in seconds.
    amplitude:
        Linear amplitude (sign included: surface bounces flip polarity).
    num_surface_bounces, num_bottom_bounces:
        Number of interactions with each boundary.
    length_m:
        Geometric path length in metres.
    """

    delay_s: float
    amplitude: float
    num_surface_bounces: int
    num_bottom_bounces: int
    length_m: float


@dataclass(frozen=True)
class ImageMethodGeometry:
    """Geometry of a shallow-water link.

    Attributes
    ----------
    water_depth_m:
        Total depth of the water column.
    tx_depth_m, rx_depth_m:
        Depths of the transmitter and receiver below the surface.
    horizontal_range_m:
        Horizontal separation between the devices.
    """

    water_depth_m: float
    tx_depth_m: float
    rx_depth_m: float
    horizontal_range_m: float

    def __post_init__(self) -> None:
        require_positive(self.water_depth_m, "water_depth_m")
        require_positive(self.horizontal_range_m, "horizontal_range_m")
        for name, depth in (("tx_depth_m", self.tx_depth_m), ("rx_depth_m", self.rx_depth_m)):
            if not 0 < depth < self.water_depth_m:
                raise ValueError(
                    f"{name} must lie strictly inside the water column "
                    f"(0, {self.water_depth_m}), got {depth}"
                )


@dataclass
class MultipathModel:
    """Image-method multipath model for one site geometry.

    Parameters
    ----------
    geometry:
        Link geometry (depths and range).
    surface_loss_db:
        Loss per surface reflection (roughness-dependent; calm water is
        nearly lossless but flips polarity).
    bottom_loss_db:
        Loss per bottom reflection (sediment-dependent).
    max_bounces:
        Maximum total number of boundary interactions per modelled path.
    extra_reflectors:
        Number of additional discrete reflectors (walls, pillars, moored
        boats) to add as randomized late arrivals -- the lake and museum
        sites of the paper show this behaviour.
    sound_speed_m_s:
        Speed of sound used to convert path lengths into delays.
    seed:
        Seed for the randomized extra reflectors.
    """

    geometry: ImageMethodGeometry
    surface_loss_db: float = 1.0
    bottom_loss_db: float = 6.0
    max_bounces: int = 4
    extra_reflectors: int = 0
    sound_speed_m_s: float = field(default_factory=sound_speed_m_s)
    seed: int | None = None

    def _tap_data(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sorted, deduplicated tap arrays ``(delays, amplitudes, surface, bottom, lengths)``.

        The numeric core of :meth:`paths`, kept as plain arrays so the
        per-packet drifted impulse-response rebuilds skip the dataclass
        round trip.  Bit-identical to the original per-path scalar loop:
        ``hypot``/``log10`` vectorize to the same results, while the final
        power laws stay scalar (NumPy's vectorized ``**`` rounds differently
        from its scalar path).
        """
        geom = self.geometry
        depth = geom.water_depth_m
        zs, zr = geom.tx_depth_m, geom.rx_depth_m
        # Both image families for every order m at once, interleaved in the
        # same (m, family) order the original nested loop produced so the
        # stable sort below breaks delay ties identically.  The bounce
        # structure is static per max_bounces; only the vertical separations
        # depend on the geometry.
        orders_interleaved, is_family2, surfaces_arr, bottoms_arr = (
            _family_structure(self.max_bounces)
        )
        verticals = 2.0 * depth * orders_interleaved + np.where(
            is_family2, zr + zs, zr - zs
        )

        lengths = np.hypot(geom.horizontal_range_m, verticals)
        clamped = np.maximum(lengths, 1.0)
        losses = (
            2.0 * 10.0 * np.log10(clamped)
            + _ALPHA_2500_DB_PER_KM * lengths / 1000.0
        )
        bounce_losses = (
            surfaces_arr.astype(float) * self.surface_loss_db
            + bottoms_arr.astype(float) * self.bottom_loss_db
        )
        # The power laws stay scalar per path: NumPy's vectorized ``**``
        # rounds differently from its scalar path, while math.pow is
        # bit-identical to the scalar ``**`` the original loop used and an
        # order of magnitude cheaper than np.float64.__pow__.
        amplitude_list = []
        odd_surface = (surfaces_arr % 2 == 1).tolist()
        for loss, bounce_loss, flip in zip(
            losses.tolist(), bounce_losses.tolist(), odd_surface
        ):
            amplitude = math.pow(10.0, -loss / 20.0) * math.pow(10.0, -bounce_loss / 20.0)
            amplitude_list.append(-amplitude if flip else amplitude)
        amplitudes = np.asarray(amplitude_list)
        delays = lengths / self.sound_speed_m_s

        extra_delays, extra_amplitudes, extra_lengths = self._extra_reflector_data()
        if extra_delays.size:
            delays = np.concatenate([delays, extra_delays])
            amplitudes = np.concatenate([amplitudes, extra_amplitudes])
            lengths = np.concatenate([lengths, extra_lengths])
            surfaces_arr = np.concatenate(
                [surfaces_arr, np.zeros(extra_delays.size, dtype=int)]
            )
            bottoms_arr = np.concatenate(
                [bottoms_arr, np.zeros(extra_delays.size, dtype=int)]
            )

        order = np.argsort(delays, kind="stable")
        delays = delays[order]
        amplitudes = amplitudes[order].copy()
        lengths = lengths[order]
        surfaces_arr = surfaces_arr[order]
        bottoms_arr = bottoms_arr[order]

        # Merge essentially identical delays (same rule as _deduplicate):
        # the merged tap keeps the first path's delay and sums amplitudes.
        keep = np.ones(delays.size, dtype=bool)
        last = 0
        for i in range(1, delays.size):
            if abs(delays[i] - delays[last]) < 1e-9:
                amplitudes[last] = amplitudes[last] + amplitudes[i]
                keep[i] = False
            else:
                last = i
        if not keep.all():
            delays = delays[keep]
            amplitudes = amplitudes[keep]
            lengths = lengths[keep]
            surfaces_arr = surfaces_arr[keep]
            bottoms_arr = bottoms_arr[keep]
        return delays, amplitudes, surfaces_arr, bottoms_arr, lengths

    def paths(self) -> list[PropagationPath]:
        """Return the discrete propagation paths, earliest first.

        Standard image-method enumeration: for every integer image order
        ``m`` there are two image families, one with vertical separation
        ``2 m D + (zr - zs)`` (equal numbers of surface and bottom bounces)
        and one with ``2 m D + (zr + zs)`` (one extra surface bounce for
        ``m >= 0``, otherwise one extra bottom bounce).  ``m = 0`` of the
        first family is the direct path.
        """
        delays, amplitudes, surfaces, bottoms, lengths = self._tap_data()
        return [
            PropagationPath(
                delay_s=float(delay),
                amplitude=float(amplitude),
                num_surface_bounces=int(surface),
                num_bottom_bounces=int(bottom),
                length_m=float(length),
            )
            for delay, amplitude, surface, bottom, length in zip(
                delays, amplitudes, surfaces, bottoms, lengths
            )
        ]

    def _extra_reflector_data(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Late arrivals from walls / pillars / moored boats, as tap arrays.

        The three random draws per reflector (detour, loss, polarity) come
        from one batched ``rng.random`` call; NumPy's ``Generator.uniform``
        is exactly ``low + (high - low) * next_double()``, so the values are
        bit-identical to the original per-reflector scalar draws.

        Returns ``(delays, amplitudes, lengths)``.
        """
        if self.extra_reflectors <= 0:
            empty = np.zeros(0)
            return empty, empty, empty
        rng = ensure_rng(self.seed)
        geom = self.geometry
        direct = float(np.hypot(geom.horizontal_range_m, geom.tx_depth_m - geom.rx_depth_m))
        draws = rng.random(3 * self.extra_reflectors)
        detours = 1.5 + (12.0 - 1.5) * draws[0::3]
        lengths = direct + detours
        reflection_losses_db = 4.0 + (12.0 - 4.0) * draws[1::3]
        negate = draws[2::3] < 0.5
        clamped = np.maximum(lengths, 1.0)
        path_losses = (
            2.0 * 10.0 * np.log10(clamped)
            + _ALPHA_2500_DB_PER_KM * lengths / 1000.0
        )
        amplitude_list = []
        for loss, reflection_loss, flip in zip(
            path_losses.tolist(), reflection_losses_db.tolist(), negate.tolist()
        ):
            amplitude = math.pow(10.0, -loss / 20.0) * math.pow(10.0, -reflection_loss / 20.0)
            amplitude_list.append(-amplitude if flip else amplitude)
        amplitudes = np.asarray(amplitude_list)
        return lengths / self.sound_speed_m_s, amplitudes, lengths

    # ------------------------------------------------------------------ output
    def impulse_response(
        self,
        sample_rate_hz: float,
        normalize_delay: bool = True,
        max_taps: int | None = None,
    ) -> np.ndarray:
        """Return the sampled impulse response of the multipath channel.

        Parameters
        ----------
        sample_rate_hz:
            Sampling rate of the waveforms the response will filter.
        normalize_delay:
            When ``True`` (default) the earliest path is placed at delay 0
            so the bulk propagation delay is removed (the link simulator
            accounts for absolute propagation delay separately).
        max_taps:
            Optional cap on the response length in samples.
        """
        require_positive(sample_rate_hz, "sample_rate_hz")
        delays, amplitudes, _, _, _ = self._tap_data()
        if delays.size == 0:
            raise RuntimeError("multipath model produced no paths")
        first_delay = delays[0] if normalize_delay else 0.0
        relative_delays = (delays - first_delay) * sample_rate_hz
        length = int(np.ceil(relative_delays[-1] if normalize_delay else relative_delays.max())) + 2
        if max_taps is not None:
            length = min(length, int(max_taps))
        response = np.zeros(max(length, 1))
        # Linear interpolation spreads each tap over two samples, which is
        # the time-domain counterpart of fractional_delay().  np.add.at
        # accumulates unbuffered in operand order, matching a per-path loop
        # even for coincident indices.
        indices = np.floor(relative_delays).astype(int)
        in_range = indices < response.size
        indices = indices[in_range]
        fracs = relative_delays[in_range] - indices
        kept = amplitudes[in_range]
        # One interleaved scatter-add keeps the accumulation order of the
        # original per-path loop (main tap, then its +1 neighbour) exact.
        targets = np.empty(2 * indices.size, dtype=int)
        targets[0::2] = indices
        targets[1::2] = indices + 1
        contributions = np.empty(2 * indices.size)
        contributions[0::2] = kept * (1.0 - fracs)
        contributions[1::2] = kept * fracs
        valid = targets < response.size
        np.add.at(response, targets[valid], contributions[valid])
        return response

    def frequency_response_db(
        self, frequencies_hz: np.ndarray, sample_rate_hz: float = 48000.0
    ) -> np.ndarray:
        """Return the channel magnitude response (dB) at given frequencies."""
        impulse = self.impulse_response(sample_rate_hz)
        n_fft = int(2 ** np.ceil(np.log2(max(impulse.size * 4, 1024))))
        spectrum = np.fft.rfft(impulse, n=n_fft)
        grid = np.fft.rfftfreq(n_fft, d=1.0 / sample_rate_hz)
        frequencies_hz = np.asarray(frequencies_hz, dtype=float)
        magnitude = np.interp(frequencies_hz, grid, np.abs(spectrum))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-12))

    def delay_spread_s(self) -> float:
        """Return the delay spread (last minus first arrival) in seconds."""
        paths = self.paths()
        return paths[-1].delay_s - paths[0].delay_s

    def direct_path_delay_s(self) -> float:
        """Return the absolute delay of the earliest arrival in seconds."""
        return self.paths()[0].delay_s

    def apply(self, samples: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Convolve ``samples`` with the (delay-normalized) impulse response."""
        impulse = self.impulse_response(sample_rate_hz)
        return np.convolve(np.asarray(samples, dtype=float), impulse)[: len(samples)]

    def delayed_apply(self, samples: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Apply the channel including the absolute propagation delay."""
        out = self.apply(samples, sample_rate_hz)
        delay_samples = self.direct_path_delay_s() * sample_rate_hz
        return fractional_delay(out, delay_samples)
