"""Underwater acoustic propagation physics.

Standard empirical models are used:

* sound speed from Mackenzie's nine-term equation (simplified to the three
  dominant terms for the shallow, fresh-to-brackish water sites of the
  paper);
* absorption from Thorp's formula -- essentially negligible below 4 kHz
  over tens of metres, but included so the long-range beacon experiments
  see the correct (small) trend;
* practical spreading loss ``k * 10 * log10(d)``; the default exponent of
  2.0 (spherical spreading) matches the short, shallow links of the paper
  where boundary losses remove most of the energy that cylindrical
  spreading would otherwise retain.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.resample import SOUND_SPEED_WATER_M_S
from repro.utils.validation import require_positive

#: Reference distance for transmission-loss calculations (metres).
REFERENCE_DISTANCE_M = 1.0

#: Canonical nominal sound speed (m/s) for distance-to-delay conversions.
#: The paper simply uses 1500 m/s; every layer that needs the nominal value
#: (MAC sensing delays, network propagation delays, feedback timeouts)
#: imports this name so the constant is defined exactly once.  The literal
#: lives in :mod:`repro.dsp.resample` (the lowest layer that needs it);
#: this is the canonical spelling for everything above the DSP layer.
SOUND_SPEED_M_S = SOUND_SPEED_WATER_M_S


def sound_speed_m_s(
    temperature_c: float = 12.0,
    salinity_ppt: float = 0.5,
    depth_m: float = 5.0,
) -> float:
    """Return the speed of sound in water (m/s).

    Uses the leading terms of Mackenzie (1981).  For the paper's fresh- and
    brackish-water sites at 2-15 m depth this lands in the 1450-1500 m/s
    range; the paper itself simply uses 1500 m/s.
    """
    t = temperature_c
    s = salinity_ppt
    d = depth_m
    return (
        1448.96
        + 4.591 * t
        - 5.304e-2 * t ** 2
        + 2.374e-4 * t ** 3
        + 1.340 * (s - 35.0)
        + 1.630e-2 * d
        + 1.675e-7 * d ** 2
    )


def absorption_db_per_km(frequency_hz: float | np.ndarray) -> float | np.ndarray:
    """Return Thorp's absorption coefficient in dB/km at ``frequency_hz``."""
    f_khz = np.asarray(frequency_hz, dtype=float) / 1000.0
    f2 = f_khz ** 2
    alpha = 0.11 * f2 / (1.0 + f2) + 44.0 * f2 / (4100.0 + f2) + 2.75e-4 * f2 + 0.003
    if np.isscalar(frequency_hz):
        return float(alpha)
    return alpha


def spreading_loss_db(distance_m: float, spreading_exponent: float = 2.0) -> float:
    """Return geometric spreading loss in dB at ``distance_m``."""
    require_positive(distance_m, "distance_m")
    distance = max(distance_m, REFERENCE_DISTANCE_M)
    return spreading_exponent * 10.0 * np.log10(distance / REFERENCE_DISTANCE_M)


def transmission_loss_db(
    distance_m: float,
    frequency_hz: float | np.ndarray = 2500.0,
    spreading_exponent: float = 2.0,
) -> float | np.ndarray:
    """Return total one-way transmission loss (spreading + absorption) in dB."""
    require_positive(distance_m, "distance_m")
    spreading = spreading_loss_db(distance_m, spreading_exponent)
    absorption = absorption_db_per_km(frequency_hz) * distance_m / 1000.0
    return spreading + absorption


def path_amplitude(
    distance_m: float,
    frequency_hz: float = 2500.0,
    spreading_exponent: float = 2.0,
) -> float:
    """Return the linear amplitude factor for a propagation path."""
    loss_db = transmission_loss_db(distance_m, frequency_hz, spreading_exponent)
    return float(10.0 ** (-loss_db / 20.0))
