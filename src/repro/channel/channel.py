"""End-to-end underwater acoustic channel between two mobile devices.

:class:`UnderwaterAcousticChannel` glues together the pieces of the
simulated testbed: the transmitting device's speaker (level, frequency
response, orientation, waterproof case), the shallow-water multipath
channel, device motion (Doppler plus channel drift within a transmission),
the receiving device's microphone and case, and ambient noise.  Its
:meth:`transmit` method is the single point every experiment pushes
waveforms through.

Reciprocity: the paper observes that underwater the forward and backward
channels differ substantially even for identical phone models (Fig. 3d),
because the speaker and microphone sit at different positions on the
device and centimetre offsets matter at these wavelengths under dense
multipath.  :meth:`reverse` therefore returns a channel with the devices
swapped *and* a slightly perturbed geometry, rather than a mirror image.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy import signal as sp_signal

from repro.channel.motion import STATIC_MOTION, MotionModel, MotionState
from repro.channel.multipath import ImageMethodGeometry, MultipathModel
from repro.channel.noise import AmbientNoiseModel
from repro.devices.case import SOFT_POUCH, WaterproofCase
from repro.devices.models import GALAXY_S9, DeviceModel
from repro.dsp.fastconv import convolve_cascade, convolve_full, convolve_shared
from repro.dsp.resample import apply_doppler, doppler_factor
from repro.utils.rng import ensure_rng
from repro.utils.units import db_to_amplitude_ratio


@dataclass(frozen=True)
class ChannelOutput:
    """Everything the channel reports about one transmission.

    Attributes
    ----------
    samples:
        The received waveform (input length plus the channel tail).
    motion:
        The motion state drawn for this transmission.
    doppler:
        The Doppler time-scaling factor that was applied.
    in_band_snr_db:
        Crude overall SNR estimate: received signal power over noise power
        (diagnostic only; the modem makes its own per-bin estimate).
    """

    samples: np.ndarray
    motion: MotionState
    doppler: float
    in_band_snr_db: float


class UnderwaterAcousticChannel:
    """Simulated acoustic link between a transmitting and receiving device."""

    def __init__(
        self,
        multipath: MultipathModel,
        noise: AmbientNoiseModel,
        tx_device: DeviceModel = GALAXY_S9,
        rx_device: DeviceModel = GALAXY_S9,
        tx_case: WaterproofCase = SOFT_POUCH,
        rx_case: WaterproofCase = SOFT_POUCH,
        motion: MotionModel = STATIC_MOTION,
        orientation_deg: float = 0.0,
        sample_rate_hz: float = 48000.0,
        extra_gain_db: float = 0.0,
        seed: int | np.random.Generator | None = None,
        use_fast_path: bool = True,
    ) -> None:
        self.multipath = multipath
        self.noise = noise
        self.tx_device = tx_device
        self.rx_device = rx_device
        self.tx_case = tx_case
        self.rx_case = rx_case
        self.motion = motion
        self.orientation_deg = float(orientation_deg)
        self.sample_rate_hz = float(sample_rate_hz)
        self.extra_gain_db = float(extra_gain_db)
        #: When ``True`` (default) :meth:`transmit` propagates packets through
        #: the frequency-domain fast path (cached transfer functions, one rFFT
        #: -> complex multiply -> irFFT).  ``False`` keeps the original
        #: per-call ``fftconvolve`` pipeline as a golden reference; the two
        #: agree to ~1e-12 relative (see tests/test_fastpath_golden.py).
        self.use_fast_path = bool(use_fast_path)
        self._rng = ensure_rng(seed)
        tx_case.check_depth(multipath.geometry.tx_depth_m)
        rx_case.check_depth(multipath.geometry.rx_depth_m)
        self._rebuild_filters()

    # ------------------------------------------------------------------ setup
    def _rebuild_filters(self) -> None:
        """Precompute the cascaded device/case FIR and the multipath taps."""
        combined = self.tx_device.speaker_response.combined_with(
            self.tx_case.response, label="tx chain"
        ).combined_with(
            self.rx_device.microphone_response, label="tx+rx chain"
        ).combined_with(self.rx_case.response, label="device chain")
        self._device_response = combined
        self._device_fir = combined.as_fir(self.sample_rate_hz, num_taps=257)
        self._device_fir_delay = (self._device_fir.size - 1) // 2
        self._impulse_response = self.multipath.impulse_response(self.sample_rate_hz)

    @property
    def geometry(self) -> ImageMethodGeometry:
        """Geometry of the underlying multipath model."""
        return self.multipath.geometry

    @property
    def distance_m(self) -> float:
        """Horizontal range between the devices."""
        return self.geometry.horizontal_range_m

    def fixed_gain_db(self) -> float:
        """Frequency-independent part of the link budget (dB)."""
        return (
            self.tx_device.source_level_db
            + self.tx_device.orientation_gain_db(self.orientation_deg)
            - self.tx_case.attenuation_db
            - self.rx_case.attenuation_db
            + self.extra_gain_db
        )

    def _fixed_gain_ratio(self) -> float:
        """Cached ``db_to_amplitude_ratio(self.fixed_gain_db())``.

        The link budget only changes when a device, case, orientation or
        extra gain is swapped, so the per-transmit orientation-pattern
        interpolation is paid once per configuration.  Keyed by value (the
        device/case dataclasses are frozen): an identity key could go stale
        if a replaced object's address were reused.
        """
        key = (
            self.tx_device, self.tx_case, self.rx_case,
            self.orientation_deg, self.extra_gain_db,
        )
        cached = getattr(self, "_gain_ratio_cache", None)
        if cached is None or cached[0] != key:
            cached = (key, db_to_amplitude_ratio(self.fixed_gain_db()))
            self._gain_ratio_cache = cached
        return cached[1]

    # ------------------------------------------------------------- randomness
    def randomize(self, rng: int | np.random.Generator | None = None) -> None:
        """Redraw the small-scale channel realization.

        Jitters the device depths by a few centimetres and redraws the
        randomized extra reflectors, modelling re-submerging the phones or
        natural drift between packets.
        """
        rng = ensure_rng(rng if rng is not None else self._rng)
        geom = self.multipath.geometry
        jitter = lambda value, scale: float(
            np.clip(value + rng.normal(0.0, scale), 0.05, geom.water_depth_m - 0.05)
        )
        # Phones on ropes / selfie sticks move by tens of centimetres between
        # packets, which is enough to decorrelate the multipath notches.
        new_geometry = ImageMethodGeometry(
            water_depth_m=geom.water_depth_m,
            tx_depth_m=jitter(geom.tx_depth_m, 0.15),
            rx_depth_m=jitter(geom.rx_depth_m, 0.15),
            horizontal_range_m=max(0.5, geom.horizontal_range_m + float(rng.normal(0.0, 0.3))),
        )
        self.multipath = replace(
            self.multipath,
            geometry=new_geometry,
            seed=int(rng.integers(0, 2 ** 31 - 1)),
        )
        self._impulse_response = self.multipath.impulse_response(self.sample_rate_hz)

    def _drifted_multipath(self, motion_state: MotionState, rng: np.random.Generator) -> MultipathModel:
        """Multipath model after the channel has drifted during a packet."""
        geom = self.multipath.geometry
        displacement = max(motion_state.displacement_m, 0.02)
        new_geometry = ImageMethodGeometry(
            water_depth_m=geom.water_depth_m,
            tx_depth_m=float(np.clip(
                geom.tx_depth_m + rng.normal(0.0, 0.3 * displacement),
                0.05, geom.water_depth_m - 0.05)),
            rx_depth_m=geom.rx_depth_m,
            horizontal_range_m=max(0.5, geom.horizontal_range_m
                                   - motion_state.radial_speed_m_s * 0.25),
        )
        return replace(
            self.multipath,
            geometry=new_geometry,
            seed=int(rng.integers(0, 2 ** 31 - 1)),
        )

    # --------------------------------------------------------------- transmit
    def transmit(
        self,
        waveform: np.ndarray,
        rng: int | np.random.Generator | None = None,
        include_noise: bool = True,
    ) -> ChannelOutput:
        """Propagate ``waveform`` from the transmitter to the receiver."""
        rng = ensure_rng(rng if rng is not None else self._rng)
        waveform = np.asarray(waveform, dtype=float).ravel()
        if waveform.size == 0:
            raise ValueError("waveform must be non-empty")

        duration_s = waveform.size / self.sample_rate_hz
        motion_state = self.motion.sample(rng, interval_s=duration_s)
        doppler = doppler_factor(motion_state.radial_speed_m_s)

        # Transmit chain: power amplifier level, orientation and case losses.
        scaled = waveform * self._fixed_gain_ratio()

        # Multipath + receive chain.  The tail uses the pre-drift impulse
        # response on purpose: the output length must be predictable before
        # the drifted channel is drawn.
        tail = self._impulse_response.size + self._device_fir.size
        if self.use_fast_path:
            received = self._propagate_fast(scaled, motion_state, doppler, duration_s, rng)
        else:
            received = self._propagate_reference(scaled, motion_state, doppler, duration_s, rng)

        # Pad to a predictable length: input + channel tail.
        total_length = waveform.size + tail
        if received.size < total_length:
            padded = np.zeros(total_length)
            padded[:received.size] = received
            received = padded
        else:
            received = received[:total_length]

        # np.dot is the fastest way to a sum of squares; the SNR here is a
        # diagnostic (the modem makes its own per-bin estimate), so the
        # different reduction order versus np.mean(x**2) is irrelevant.
        signal_power = float(np.dot(received, received) / received.size) if received.size else 0.0
        if include_noise:
            ambient = self.noise.generate(total_length, self.sample_rate_hz, rng)
            mic_noise = rng.standard_normal(total_length) * db_to_amplitude_ratio(
                self.rx_device.microphone_noise_db
            )
            noise = np.add(ambient, mic_noise, out=mic_noise)
            noise_power = float(np.dot(noise, noise) / noise.size)
            received = np.add(received, noise, out=noise)
        else:
            noise_power = 1e-30
        snr_db = 10.0 * np.log10(max(signal_power, 1e-30) / max(noise_power, 1e-30))
        return ChannelOutput(
            samples=received,
            motion=motion_state,
            doppler=doppler,
            in_band_snr_db=snr_db,
        )

    def _drift_mix(
        self,
        static_part: np.ndarray,
        drifted_part: np.ndarray,
        motion_state: MotionState,
        duration_s: float,
    ) -> np.ndarray:
        """Cross-fade the static and drifted multipath outputs over a packet."""
        length = max(static_part.size, drifted_part.size)
        if static_part.size < length:
            padded = np.zeros(length)
            padded[:static_part.size] = static_part
            static_part = padded
        if drifted_part.size < length:
            padded = np.zeros(length)
            padded[:drifted_part.size] = drifted_part
            drifted_part = padded
        fade_end = min(1.0, motion_state.drift_rate_per_s * duration_s)
        fade = np.linspace(0.0, fade_end, length)
        return (1.0 - fade) * static_part + fade * drifted_part

    def _propagate_reference(
        self,
        scaled: np.ndarray,
        motion_state: MotionState,
        doppler: float,
        duration_s: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Seed propagation pipeline: 2-3 separate ``fftconvolve`` passes.

        Retained as the golden reference for the frequency-domain fast path;
        the equivalence is pinned by tests/test_fastpath_golden.py.
        """
        static_part = sp_signal.fftconvolve(scaled, self._impulse_response)
        if motion_state.drift_rate_per_s > 0:
            drifted_multipath = self._drifted_multipath(motion_state, rng)
            drifted_response = drifted_multipath.impulse_response(self.sample_rate_hz)
            drifted_part = sp_signal.fftconvolve(scaled, drifted_response)
            propagated = self._drift_mix(static_part, drifted_part, motion_state, duration_s)
            # The drift persists: the next transmission starts from the channel
            # the devices have drifted into, so consecutive transmissions (e.g.
            # the preamble and the later data burst) see different channels --
            # exactly the effect the paper's Fig. 16 experiment measures.
            self.multipath = drifted_multipath
            self._impulse_response = drifted_response
        else:
            propagated = static_part

        # Doppler time-scaling.
        if abs(doppler - 1.0) > 1e-9:
            propagated = apply_doppler(propagated, doppler)

        # Receive chain: cascaded device/case frequency response.
        received = sp_signal.fftconvolve(propagated, self._device_fir)
        return received[self._device_fir_delay:]

    def _propagate_fast(
        self,
        scaled: np.ndarray,
        motion_state: MotionState,
        doppler: float,
        duration_s: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Frequency-domain propagation with cached transfer functions.

        The static case (no drift, no Doppler) collapses the whole chain
        into one rFFT, one multiply against the cached combined multipath x
        device-FIR spectrum and one irFFT.  Under motion drift the two
        multipath spectra share a single forward FFT of the packet before
        the time-domain cross-fade; Doppler resampling, which is inherently
        a time-domain warp, falls back to the cached-kernel FIR convolution
        afterwards.
        """
        drifting = motion_state.drift_rate_per_s > 0
        moving = abs(doppler - 1.0) > 1e-9
        if not drifting and not moving:
            received = convolve_cascade(scaled, self._impulse_response, self._device_fir)
            return received[self._device_fir_delay:]

        if drifting:
            drifted_multipath = self._drifted_multipath(motion_state, rng)
            drifted_response = drifted_multipath.impulse_response(self.sample_rate_hz)
            static_part, drifted_part = convolve_shared(
                scaled, (self._impulse_response, drifted_response)
            )
            propagated = self._drift_mix(static_part, drifted_part, motion_state, duration_s)
            self.multipath = drifted_multipath
            self._impulse_response = drifted_response
        else:
            propagated = convolve_full(scaled, self._impulse_response)

        if moving:
            propagated = apply_doppler(propagated, doppler)

        received = convolve_full(propagated, self._device_fir)
        return received[self._device_fir_delay:]

    # ------------------------------------------------------------ directions
    def reverse(self, seed: int | np.random.Generator | None = None) -> "UnderwaterAcousticChannel":
        """Return the backward-direction channel (Bob -> Alice).

        The devices swap roles and the multipath geometry is perturbed by a
        few centimetres, reflecting the different physical positions of the
        speaker and the microphone on each device.  This intentionally
        breaks reciprocity, as measured in the paper.
        """
        rng = ensure_rng(seed if seed is not None else self._rng)
        geom = self.multipath.geometry
        perturbed_geometry = ImageMethodGeometry(
            water_depth_m=geom.water_depth_m,
            tx_depth_m=float(np.clip(geom.rx_depth_m + rng.normal(0.0, 0.06),
                                     0.05, geom.water_depth_m - 0.05)),
            rx_depth_m=float(np.clip(geom.tx_depth_m + rng.normal(0.0, 0.06),
                                     0.05, geom.water_depth_m - 0.05)),
            horizontal_range_m=max(0.5, geom.horizontal_range_m + float(rng.normal(0.0, 0.05))),
        )
        reverse_multipath = replace(
            self.multipath,
            geometry=perturbed_geometry,
            seed=int(rng.integers(0, 2 ** 31 - 1)),
        )
        return UnderwaterAcousticChannel(
            multipath=reverse_multipath,
            noise=self.noise,
            tx_device=self.rx_device,
            rx_device=self.tx_device,
            tx_case=self.rx_case,
            rx_case=self.tx_case,
            motion=self.motion,
            orientation_deg=self.orientation_deg,
            sample_rate_hz=self.sample_rate_hz,
            extra_gain_db=self.extra_gain_db,
            seed=rng,
            use_fast_path=self.use_fast_path,
        )

    # ------------------------------------------------------------- diagnostics
    def end_to_end_response_db(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Return the end-to-end magnitude response (dB) at given frequencies.

        Includes the device chain, the case losses, the orientation loss and
        the multipath channel -- the quantity plotted in Fig. 3 of the paper.
        """
        frequencies_hz = np.asarray(frequencies_hz, dtype=float)
        device = self._device_response.gain_db(frequencies_hz)
        channel = self.multipath.frequency_response_db(frequencies_hz, self.sample_rate_hz)
        return device + channel + self.fixed_gain_db()
