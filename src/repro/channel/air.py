"""In-air acoustic channel used by the reciprocity characterization.

Fig. 3c of the paper shows that in air the forward and backward channels
between two identical phones have very similar frequency responses, whereas
underwater (Fig. 3d) they differ substantially.  The difference comes from
the much denser multipath underwater combined with the centimetre-scale
wavelengths: tiny geometric asymmetries between the speaker and microphone
positions on the two devices translate into different standing-wave
patterns for the two directions.

:class:`InAirChannel` models a short in-air link with one weak floor/wall
reflection; swapping transmitter and receiver changes the geometry only
negligibly, so the forward and backward responses come out nearly
identical -- which is exactly the contrast the benchmark needs to show.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.units import db_to_amplitude_ratio
from repro.utils.validation import require_positive

#: Speed of sound in air (m/s) at room temperature.
SOUND_SPEED_AIR_M_S = 343.0


@dataclass
class InAirChannel:
    """A simple two-path in-air channel between two devices.

    Parameters
    ----------
    distance_m:
        Separation between the devices.
    reflection_delay_ms:
        Extra delay of the single modelled reflection.
    reflection_gain_db:
        Gain of the reflection relative to the direct path.
    noise_level_db:
        In-air ambient noise level.
    """

    distance_m: float = 2.0
    reflection_delay_ms: float = 3.0
    reflection_gain_db: float = -12.0
    noise_level_db: float = -55.0

    def __post_init__(self) -> None:
        require_positive(self.distance_m, "distance_m")

    def impulse_response(self, sample_rate_hz: float) -> np.ndarray:
        """Return the two-tap impulse response (bulk delay removed)."""
        require_positive(sample_rate_hz, "sample_rate_hz")
        direct_gain = 1.0 / max(self.distance_m, 1.0)
        reflection_offset = int(round(self.reflection_delay_ms * 1e-3 * sample_rate_hz))
        response = np.zeros(reflection_offset + 1)
        response[0] = direct_gain
        response[reflection_offset] = direct_gain * db_to_amplitude_ratio(self.reflection_gain_db)
        return response

    def transmit(
        self,
        waveform: np.ndarray,
        sample_rate_hz: float,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Propagate ``waveform`` through the in-air channel and add noise."""
        rng = ensure_rng(rng)
        waveform = np.asarray(waveform, dtype=float)
        received = np.convolve(waveform, self.impulse_response(sample_rate_hz))[: waveform.size]
        noise = rng.standard_normal(received.size) * db_to_amplitude_ratio(self.noise_level_db)
        return received + noise

    def reverse(self) -> "InAirChannel":
        """Return the backward-direction channel.

        In air the geometry is effectively symmetric, so the reverse channel
        is an almost identical copy (tiny perturbation of the reflection).
        """
        return InAirChannel(
            distance_m=self.distance_m,
            reflection_delay_ms=self.reflection_delay_ms * 1.02,
            reflection_gain_db=self.reflection_gain_db - 0.5,
            noise_level_db=self.noise_level_db,
        )
