"""Ambient underwater noise synthesis.

The paper's noise characterization (Fig. 4) shows three robust features:

* the noise floor is highest below 1 kHz (flowing water, bubbles);
* there is appreciable noise up to about 4.5 kHz that then falls off;
* the overall level differs by up to ~9 dB between locations and also
  between devices (because each microphone shapes the noise with its own
  response).

The :class:`AmbientNoiseModel` synthesizes colored Gaussian noise with a
spectral shape capturing those features plus optional transient "spiky"
components (bubbles, clanks from boats) that exercise the preamble
detector's robustness to impulsive noise.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.dsp.fastconv import irfft_n, next_fast_len
from repro.utils.rng import ensure_rng
from repro.utils.units import db_to_amplitude_ratio
from repro.utils.validation import require_positive

#: Cache of spectral amplitude shapes keyed by (shape parameters, length,
#: sample rate).  The shape is deterministic given those inputs, so reusing
#: it is bit-identical to recomputing; the per-packet noise synthesis then
#: only pays for the white-noise draw and one FFT round trip.
_SHAPE_CACHE: OrderedDict[tuple, np.ndarray] = OrderedDict()
_SHAPE_CACHE_MAX = 32


@dataclass
class AmbientNoiseModel:
    """Synthesizes site-dependent ambient acoustic noise.

    Parameters
    ----------
    level_db:
        Overall noise level in dB relative to the simulator's unit
        reference pressure (what a transmit waveform of RMS 1.0 corresponds
        to at 1 m).  More negative is quieter.
    low_frequency_emphasis_db:
        Extra noise power below ``low_frequency_cutoff_hz``, capturing the
        flow/bubble noise the paper observes under 1 kHz.
    low_frequency_cutoff_hz:
        Corner frequency for the low-frequency emphasis.
    rolloff_start_hz:
        Frequency above which the noise starts to fall off.
    rolloff_db_per_octave:
        Slope of the high-frequency roll-off.
    impulsive_rate_hz:
        Expected number of impulsive transients (bubbles, impacts) per
        second; zero disables them.
    impulsive_gain_db:
        Amplitude of impulsive transients relative to the stationary noise.
    """

    level_db: float = -40.0
    low_frequency_emphasis_db: float = 18.0
    low_frequency_cutoff_hz: float = 1000.0
    rolloff_start_hz: float = 4500.0
    rolloff_db_per_octave: float = 9.0
    impulsive_rate_hz: float = 0.0
    impulsive_gain_db: float = 8.0

    def spectral_shape_db(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Return the relative noise power spectral density shape in dB."""
        frequencies_hz = np.asarray(frequencies_hz, dtype=float)
        shape = np.zeros_like(frequencies_hz)
        # Low-frequency emphasis: smooth step below the cutoff.  The wide
        # transition (several hundred Hz) matches the paper's observation
        # that flow/bubble noise remains elevated up to roughly 1.5 kHz.
        lf = self.low_frequency_emphasis_db / (
            1.0 + np.exp((frequencies_hz - self.low_frequency_cutoff_hz) / 350.0)
        )
        shape += lf
        # High-frequency roll-off above rolloff_start_hz.
        above = frequencies_hz > self.rolloff_start_hz
        octaves = np.zeros_like(frequencies_hz)
        octaves[above] = np.log2(frequencies_hz[above] / self.rolloff_start_hz)
        shape -= self.rolloff_db_per_octave * octaves
        return shape

    def generate(
        self,
        num_samples: int,
        sample_rate_hz: float,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Return ``num_samples`` of synthesized ambient noise."""
        require_positive(sample_rate_hz, "sample_rate_hz")
        if num_samples <= 0:
            return np.zeros(0)
        rng = ensure_rng(rng)
        # Draw the white spectrum directly in the frequency domain at an
        # FFT-friendly length (packet buffers routinely have large prime
        # factors, e.g. 10022 = 2 x 5011, where an exact-size transform
        # costs ~10x a 5-smooth one).  The rFFT of time-domain white
        # Gaussian noise *is* iid complex Gaussian, so colouring a directly
        # drawn spectrum yields the same noise process while skipping the
        # forward transform; the per-seed realization differs from the seed
        # implementation but the spectral shape and the normalized level --
        # the statistics the tests and the calibration tables measure -- are
        # unchanged (pinned by tests/test_channel_noise.py).  The
        # deterministic signal path stays bit-identical.
        n_fft = next_fast_len(num_samples)
        half = n_fft // 2 + 1
        draws = rng.standard_normal(2 * half)
        spectrum = np.empty(half, dtype=complex)
        spectrum.real = draws[:half]
        spectrum.imag = draws[half:]
        shape_amplitude = self._shape_amplitude(n_fft, sample_rate_hz)
        colored = irfft_n(spectrum * shape_amplitude, n_fft)[:num_samples]
        rms = np.sqrt(np.dot(colored, colored) / colored.size)
        if rms > 0:
            colored = colored / rms
        noise = colored * db_to_amplitude_ratio(self.level_db)
        if self.impulsive_rate_hz > 0:
            noise = noise + self._impulsive_component(num_samples, sample_rate_hz, rng)
        return noise

    def _shape_amplitude(self, num_samples: int, sample_rate_hz: float) -> np.ndarray:
        """Cached amplitude shaping vector for the one-sided spectrum.

        ``spectral_shape_db`` is a power shape; amplitude scaling uses /20.
        """
        key = (
            int(num_samples),
            float(sample_rate_hz),
            self.low_frequency_emphasis_db,
            self.low_frequency_cutoff_hz,
            self.rolloff_start_hz,
            self.rolloff_db_per_octave,
        )
        cached = _SHAPE_CACHE.get(key)
        if cached is not None:
            _SHAPE_CACHE.move_to_end(key)
            return cached
        freqs = np.fft.rfftfreq(num_samples, d=1.0 / sample_rate_hz)
        shape_amplitude = 10.0 ** (self.spectral_shape_db(freqs) / 20.0)
        shape_amplitude.setflags(write=False)
        _SHAPE_CACHE[key] = shape_amplitude
        if len(_SHAPE_CACHE) > _SHAPE_CACHE_MAX:
            _SHAPE_CACHE.popitem(last=False)
        return shape_amplitude

    def _impulsive_component(
        self, num_samples: int, sample_rate_hz: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Short decaying bursts modelling bubbles and mechanical clanks."""
        duration_s = num_samples / sample_rate_hz
        expected = self.impulsive_rate_hz * duration_s
        count = int(rng.poisson(expected))
        impulses = np.zeros(num_samples)
        if count == 0:
            return impulses
        burst_length = max(int(0.003 * sample_rate_hz), 8)
        envelope = np.exp(-np.arange(burst_length) / (burst_length / 4.0))
        amplitude = db_to_amplitude_ratio(self.level_db + self.impulsive_gain_db)
        for _ in range(count):
            start = int(rng.integers(0, max(num_samples - burst_length, 1)))
            burst = rng.standard_normal(burst_length) * envelope * amplitude
            impulses[start:start + burst_length] += burst
        return impulses

    def with_level(self, level_db: float) -> "AmbientNoiseModel":
        """Return a copy with a different overall level."""
        return AmbientNoiseModel(
            level_db=level_db,
            low_frequency_emphasis_db=self.low_frequency_emphasis_db,
            low_frequency_cutoff_hz=self.low_frequency_cutoff_hz,
            rolloff_start_hz=self.rolloff_start_hz,
            rolloff_db_per_octave=self.rolloff_db_per_octave,
            impulsive_rate_hz=self.impulsive_rate_hz,
            impulsive_gain_db=self.impulsive_gain_db,
        )
