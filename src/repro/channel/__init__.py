"""Simulated underwater acoustic channel substrate.

The paper evaluates AquaApp in real lakes and bays; this package provides
the synthetic equivalent used by the reproduction: shallow-water multipath
impulse responses built with the image method, frequency-dependent
absorption and spreading loss, site-dependent ambient noise, device motion
(Doppler plus channel drift) and a simple in-air channel used by the
reciprocity characterization experiment.
"""

from repro.channel.air import InAirChannel
from repro.channel.channel import ChannelOutput, UnderwaterAcousticChannel
from repro.channel.motion import MotionModel, MotionState
from repro.channel.multipath import ImageMethodGeometry, MultipathModel, PropagationPath
from repro.channel.noise import AmbientNoiseModel
from repro.channel.physics import (
    SOUND_SPEED_M_S,
    absorption_db_per_km,
    sound_speed_m_s,
    spreading_loss_db,
    transmission_loss_db,
)

__all__ = [
    "UnderwaterAcousticChannel",
    "ChannelOutput",
    "InAirChannel",
    "MultipathModel",
    "ImageMethodGeometry",
    "PropagationPath",
    "AmbientNoiseModel",
    "MotionModel",
    "MotionState",
    "SOUND_SPEED_M_S",
    "sound_speed_m_s",
    "absorption_db_per_km",
    "spreading_loss_db",
    "transmission_loss_db",
]
