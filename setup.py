"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that ``pip install -e . --no-use-pep517`` (the legacy editable
install path) works on machines without the ``wheel`` package or network
access to fetch build dependencies.
"""

from setuptools import setup

setup()
