"""Fig. 3c/d -- channel reciprocity in air versus underwater.

The paper sends a 1-3 kHz chirp between two Galaxy S9s 2 m apart, first in
air and then underwater, in both directions.  In air the forward and
backward frequency responses are nearly identical; underwater they differ
substantially, which is why the receiver must explicitly feed the selected
band back to the transmitter.

The benchmark reports the mean and maximum absolute difference between the
forward and backward responses for both media.
"""

import numpy as np

from benchmarks._common import print_figure
from repro.channel.air import InAirChannel
from repro.dsp.chirp import lfm_chirp
from repro.dsp.spectrum import frequency_response_from_probe
from repro.environments.factory import build_channel
from repro.environments.sites import LAKE

PROBE_FREQS = np.arange(1000.0, 3000.0, 25.0)


def _response(transmit, seed):
    chirp = lfm_chirp(1000.0, 3000.0, 1.0, 48000.0)
    received = transmit(chirp, seed)
    return frequency_response_from_probe(chirp, received, 48000.0, PROBE_FREQS)


def _run():
    rows = []
    # In air: 2 m apart, one weak reflection, nearly symmetric geometry.
    air_forward = InAirChannel(distance_m=2.0)
    air_backward = air_forward.reverse()
    fwd = _response(lambda x, s: air_forward.transmit(x, 48000.0, rng=s), 1)
    bwd = _response(lambda x, s: air_backward.transmit(x, 48000.0, rng=s), 2)
    diff = np.abs(fwd - bwd)
    rows.append(["air", f"{diff.mean():.1f}", f"{diff.max():.1f}"])

    # Underwater: 2 m apart at the lake site.
    water_forward = build_channel(site=LAKE, distance_m=2.0, seed=7)
    water_backward = water_forward.reverse(seed=8)
    fwd = _response(lambda x, s: water_forward.transmit(x, rng=s).samples, 3)
    bwd = _response(lambda x, s: water_backward.transmit(x, rng=s).samples, 4)
    diff = np.abs(fwd - bwd)
    rows.append(["underwater", f"{diff.mean():.1f}", f"{diff.max():.1f}"])
    return rows


def test_fig03cd_reciprocity(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 3c/d -- forward vs backward channel response difference (2 m, S9 pair)",
        ["medium", "mean |forward - backward| (dB)", "max |forward - backward| (dB)"],
        rows,
        notes="Paper: responses are similar in air but differ significantly "
              "underwater, motivating explicit feedback of the selected band.",
    )
    benchmark.extra_info["table"] = table
    air_mean = float(rows[0][1])
    water_mean = float(rows[1][1])
    assert water_mean > air_mean, "underwater reciprocity mismatch must exceed in-air mismatch"
