"""Fig. 4 -- underwater ambient noise across devices and locations.

The paper records five seconds of ambient noise on different devices at the
same spot (Fig. 4a) and with the same device at different spots (Fig. 4b),
finding (1) noise is strongest below 1 kHz, (2) appreciable noise extends
to about 4.5 kHz, and (3) levels differ by up to ~9 dB across locations.

The benchmark synthesizes the same recordings and reports the band levels.
"""

import numpy as np

from benchmarks._common import print_figure
from repro.devices.models import DEVICE_CATALOG, GALAXY_S9
from repro.dsp.spectrum import band_power_db
from repro.environments.factory import build_noise_model
from repro.environments.sites import BAY, BRIDGE, LAKE, MUSEUM, PARK

DURATION_S = 5.0
SAMPLE_RATE = 48000.0


def _band_levels(samples):
    """Average noise power *density* (dB, per Hz) in three bands.

    The paper's Fig. 4 plots amplitude versus frequency, so the comparison
    between bands of different widths must use densities rather than total
    band powers.
    """
    import numpy as np

    def density(low_hz, high_hz):
        return band_power_db(samples, SAMPLE_RATE, low_hz, high_hz) - 10.0 * np.log10(high_hz - low_hz)

    return density(100.0, 1000.0), density(1000.0, 4500.0), density(6000.0, 12000.0)


def _run_devices():
    """Fig. 4a: same location (lake), noise as heard by each device's microphone."""
    rows = []
    noise_model = build_noise_model(LAKE)
    raw = noise_model.generate(int(DURATION_S * SAMPLE_RATE), SAMPLE_RATE, rng=1)
    for name, device in DEVICE_CATALOG.items():
        heard = device.microphone_response.apply(raw, SAMPLE_RATE)
        low, mid, high = _band_levels(heard)
        rows.append([device.name, f"{low:.1f}", f"{mid:.1f}", f"{high:.1f}"])
    return rows


def _run_locations():
    """Fig. 4b: same device (Galaxy S9), different locations."""
    rows = []
    mid_levels = []
    for i, site in enumerate((BRIDGE, PARK, LAKE, MUSEUM, BAY)):
        raw = build_noise_model(site).generate(int(DURATION_S * SAMPLE_RATE), SAMPLE_RATE, rng=10 + i)
        heard = GALAXY_S9.microphone_response.apply(raw, SAMPLE_RATE)
        low, mid, high = _band_levels(heard)
        mid_levels.append(mid)
        rows.append([site.name, f"{low:.1f}", f"{mid:.1f}", f"{high:.1f}"])
    rows.append(["spread (max-min)", "", f"{max(mid_levels) - min(mid_levels):.1f}", ""])
    return rows


def test_fig04a_noise_across_devices(benchmark):
    rows = benchmark.pedantic(_run_devices, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 4a -- ambient noise by device (lake site, 5 s recording)",
        ["device", "<1 kHz (dB)", "1-4.5 kHz (dB)", ">6 kHz (dB)"],
        rows,
        notes="Paper: noise is highest below 1 kHz and profiles vary across devices.",
    )
    benchmark.extra_info["table"] = table
    for row in rows:
        # Noise recorded through the phone microphones is strongest below
        # 1 kHz and falls off sharply above the communication band.
        assert float(row[1]) > float(row[2]) > float(row[3])
        assert float(row[2]) - float(row[3]) > 10.0


def test_fig04b_noise_across_locations(benchmark):
    rows = benchmark.pedantic(_run_locations, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 4b -- ambient noise by location (Galaxy S9)",
        ["location", "<1 kHz (dB)", "1-4.5 kHz (dB)", ">6 kHz (dB)"],
        rows,
        notes="Paper: the 0-6 kHz noise level varies by about 9 dB across locations.",
    )
    benchmark.extra_info["table"] = table
    spread = float(rows[-1][2])
    assert 3.0 < spread < 15.0, "cross-site noise spread should be several dB (paper: ~9 dB)"
