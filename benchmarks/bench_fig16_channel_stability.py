"""Fig. 16 -- channel stability between the preamble and the data symbols.

The paper transmits two preambles back to back (separated by the feedback
interval): the band is selected from the first, and the minimum SNR inside
that band is re-measured with the second.  In the static case the minimum
stays comfortably above the 4 dB (~1 % BER) line thanks to the
conservative selection parameters; with slow and fast motion the minimum
fluctuates and occasionally dips below the line, explaining the PER
increase under fast motion.
"""

import numpy as np

from benchmarks._common import print_figure
from repro.analysis.ber import snr_for_target_ber
from repro.channel.motion import FAST_MOTION, SLOW_MOTION, STATIC_MOTION
from repro.environments.factory import build_link_pair
from repro.environments.sites import LAKE
from repro.link.session import LinkSession

MOTIONS = (("static", STATIC_MOTION), ("slow", SLOW_MOTION), ("fast", FAST_MOTION))
NUM_PROBES = 15
REFERENCE_SNR_DB = 4.0


def _probe(motion, seed):
    forward, backward = build_link_pair(site=LAKE, distance_m=10.0, motion=motion, seed=seed)
    session = LinkSession(forward, backward, seed=seed)
    values = []
    for i in range(NUM_PROBES):
        forward.randomize(np.random.default_rng(seed * 1000 + i))
        value = session.probe_channel_stability()
        if np.isfinite(value):
            values.append(value)
    return np.array(values)


def _run():
    rows = []
    stats = {}
    for i, (label, motion) in enumerate(MOTIONS):
        values = _probe(motion, 160 + i)
        below = float(np.mean(values < REFERENCE_SNR_DB)) if values.size else float("nan")
        stats[label] = (values, below)
        rows.append([
            label,
            f"{np.mean(values):.1f}" if values.size else "n/a",
            f"{np.min(values):.1f}" if values.size else "n/a",
            f"{np.std(values):.1f}" if values.size else "n/a",
            f"{below:.2f}",
        ])
    return rows, stats


def test_fig16_channel_stability(benchmark):
    rows, stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 16 -- min SNR in the selected band, measured with a second preamble "
        f"(lake, 10 m; reference line {REFERENCE_SNR_DB:.0f} dB ~ 1% BER, "
        f"theoretical 1% point is {snr_for_target_ber(0.01):.1f} dB)",
        ["motion", "mean min-SNR (dB)", "worst min-SNR (dB)", "std (dB)",
         "fraction below 4 dB"],
        rows,
        notes="Paper: static probes stay high; slow/fast motion increases the "
              "fluctuation and occasionally drops below the reference line.",
    )
    benchmark.extra_info["table"] = table
    static_values, _ = stats["static"]
    fast_values, _ = stats["fast"]
    assert static_values.size and fast_values.size
    # Motion makes the second-preamble SNR fluctuate more and produces worse
    # worst-case dips than the (quasi-)static channel.  Absolute levels sit
    # lower than the paper's because the simulated 10 m lake channel has a
    # lower overall SNR (see EXPERIMENTS.md).
    assert np.std(fast_values) >= np.std(static_values) * 0.7
    assert np.min(fast_values) <= np.min(static_values) + 1.0
