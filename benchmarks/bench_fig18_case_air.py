"""Fig. 18 -- effect of air inside the waterproof case.

The paper compares the end-to-end frequency response with the air expelled
from the PVC pouch against the pouch deliberately filled with air: the fine
structure of the response changes but the average power in the 1-4 kHz
band is not significantly different.
"""

import numpy as np

from benchmarks._common import print_figure
from repro.devices.case import AIR_FILLED_POUCH, SOFT_POUCH
from repro.dsp.chirp import lfm_chirp
from repro.dsp.spectrum import frequency_response_from_probe
from repro.environments.factory import build_channel
from repro.environments.sites import LAKE

PROBE_FREQS = np.arange(1000.0, 4000.0, 50.0)


def _response(case, seed):
    channel = build_channel(site=LAKE, distance_m=5.0, tx_case=case, rx_case=case, seed=7)
    chirp = lfm_chirp(1000.0, 4000.0, 0.5, 48000.0)
    received = channel.transmit(chirp, rng=seed).samples
    return frequency_response_from_probe(chirp, received, 48000.0, PROBE_FREQS)


def _run():
    expelled = _response(SOFT_POUCH, 1)
    filled = _response(AIR_FILLED_POUCH, 2)
    rows = [
        ["air expelled", f"{expelled.mean():.1f}", f"{expelled.max() - expelled.min():.1f}"],
        ["air filled", f"{filled.mean():.1f}", f"{filled.max() - filled.min():.1f}"],
        ["difference", f"{abs(expelled.mean() - filled.mean()):.1f}",
         f"{np.max(np.abs(expelled - filled)):.1f}"],
    ]
    return rows, expelled, filled


def test_fig18_air_in_case(benchmark):
    rows, expelled, filled = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 18 -- effect of air in the waterproof case (lake, 5 m)",
        ["configuration", "average 1-4 kHz power (dB)", "peak-to-trough (dB)"],
        rows,
        notes="Paper: the responses differ in detail but the average power in "
              "1-4 kHz is not significantly different.",
    )
    benchmark.extra_info["table"] = table
    average_difference = abs(expelled.mean() - filled.mean())
    pointwise_difference = np.max(np.abs(expelled - filled))
    assert average_difference < 4.0, "average in-band power should be comparable"
    assert pointwise_difference > average_difference, "fine structure differs more than the average"
