"""Fig. 15 -- effect of phone orientation (bridge, 5 m, 1 m deep).

One phone is rotated in azimuth from 0 to 180 degrees in 45-degree steps.
The paper reports the median selected bitrate falling from 1067 bps at 0
degrees to 567 bps at 180 degrees, while the adaptive scheme keeps the PER
low at all angles (unlike the fixed bands, which degrade at large angles).
"""

from benchmarks._common import (
    ALL_SCHEMES, CDF_PERCENTILES, cdf_row, print_figure, runner, scheme_label,
)
from repro.core.baselines import FIXED_BAND_SCHEMES
from repro.environments.sites import BRIDGE
from repro.experiments import Scenario, Sweep

ANGLES_DEG = (0.0, 45.0, 90.0, 135.0, 180.0)
NUM_PACKETS = 15

#: One scenario per (angle, scheme), seed following the angle index.
SWEEP = (
    Sweep(Scenario(site=BRIDGE, distance_m=5.0, num_packets=NUM_PACKETS))
    .paired(
        orientation_deg=list(ANGLES_DEG),
        seed=[150 + i for i in range(len(ANGLES_DEG))],
    )
    .over(scheme=list(ALL_SCHEMES))
)


def _run():
    results = runner().run(SWEEP)
    bitrate_rows, per_rows = [], []
    medians, adaptive_pers = {}, {}
    for angle in ANGLES_DEG:
        adaptive = results.lookup(orientation_deg=angle, scheme="adaptive")
        medians[angle] = adaptive.median_bitrate_bps
        adaptive_pers[angle] = adaptive.packet_error_rate
        bitrate_rows.append([f"{angle:.0f} deg"] + cdf_row(adaptive.finite_bitrates_bps))
        row = [f"{angle:.0f} deg", f"{adaptive.packet_error_rate:.2f}"]
        for scheme in FIXED_BAND_SCHEMES:
            fixed = results.lookup(orientation_deg=angle, scheme=scheme)
            row.append(f"{fixed.packet_error_rate:.2f}")
        per_rows.append(row)
    return bitrate_rows, per_rows, medians, adaptive_pers


def test_fig15_orientation(benchmark):
    bitrate_rows, per_rows, medians, adaptive_pers = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    table_a = print_figure(
        "Fig. 15a -- selected coded bitrate CDF vs azimuth offset (bridge, 5 m)",
        ["azimuth"] + [f"p{p}" for p in CDF_PERCENTILES],
        bitrate_rows,
        notes="Paper medians: 1067 bps at 0 degrees down to 567 bps at 180 degrees.",
    )
    table_b = print_figure(
        "Fig. 15b -- PER vs azimuth offset",
        ["azimuth", "adaptive (ours)"] + [scheme_label(s) for s in FIXED_BAND_SCHEMES],
        per_rows,
        notes="Paper: the adaptive scheme keeps a low PER at every orientation.",
    )
    benchmark.extra_info["table"] = table_a + table_b
    assert medians[180.0] <= medians[0.0], "bitrate should drop when devices face away"
    assert all(per <= 0.35 for per in adaptive_pers.values())
