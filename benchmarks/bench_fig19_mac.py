"""Fig. 19 -- MAC protocol with multiple transmitters.

Two network deployments (two and three backlogged transmitters plus one
receiver, 5-10 m apart, up to 120 packets each) are run with and without
carrier sense.  The paper measures the fraction of packets involved in a
collision: roughly 53 % -> 7 % for three transmitters and 33 % -> 5 % for
two transmitters once carrier sense is enabled.
"""

import numpy as np

from benchmarks._common import print_figure
from repro.mac.simulator import MacNetworkSimulator, TransmitterConfig

PACKETS_PER_TX = 120


def _simulate(num_transmitters, carrier_sense, seed):
    transmitters = [
        TransmitterConfig(name=f"tx{i}", distance_to_receiver_m=5.0 + 2.5 * i,
                          num_packets=PACKETS_PER_TX)
        for i in range(num_transmitters)
    ]
    simulator = MacNetworkSimulator(transmitters, carrier_sense=carrier_sense)
    return simulator.run(seed=seed)


def _run():
    rows = []
    fractions = {}
    for num_transmitters in (2, 3):
        without = _simulate(num_transmitters, carrier_sense=False, seed=190 + num_transmitters)
        with_cs = _simulate(num_transmitters, carrier_sense=True, seed=190 + num_transmitters)
        fractions[(num_transmitters, False)] = without.collision_fraction
        fractions[(num_transmitters, True)] = with_cs.collision_fraction
        rows.append([
            f"{num_transmitters} transmitters",
            f"{without.collision_fraction:.2f}",
            f"{with_cs.collision_fraction:.2f}",
            f"{without.num_packets}",
        ])
    return rows, fractions


def test_fig19_mac_carrier_sense(benchmark):
    rows, fractions = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 19 -- fraction of collided packets with and without carrier sense",
        ["network", "no carrier sense", "carrier sense", "packets sent"],
        rows,
        notes="Paper: 3 transmitters 53 % -> 7 %; 2 transmitters 33 % -> 5 %.",
    )
    benchmark.extra_info["table"] = table
    assert fractions[(3, False)] > fractions[(2, False)], (
        "more transmitters collide more without carrier sense")
    for n in (2, 3):
        assert fractions[(n, True)] < fractions[(n, False)] / 2, (
            "carrier sense must cut collisions by well over half")
        assert fractions[(n, True)] < 0.15
