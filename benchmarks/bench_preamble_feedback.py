"""Section 3 (text) -- preamble detection rate and feedback error rate vs distance.

The paper transmits 180 preambles at 5/10/20/30 m in the lake and reports
detection rates of 0.99, 1.0, 1.0 and 0.96, and a feedback-decoding error
rate of about 1 % across all distances (errors confuse adjacent bins).

The benchmark measures both quantities from full protocol exchanges at each
distance.
"""

from benchmarks._common import print_figure, run_link
from repro.environments.sites import LAKE

DISTANCES_M = (5.0, 10.0, 20.0, 30.0)
NUM_PACKETS = 25


def _run():
    rows = []
    detection, feedback_error = {}, {}
    for i, distance in enumerate(DISTANCES_M):
        stats = run_link(LAKE, distance, "adaptive", NUM_PACKETS, seed=200 + i)
        detection[distance] = stats.preamble_detection_rate
        feedback_error[distance] = stats.feedback_error_rate
        rows.append([
            f"{distance:.0f} m",
            f"{stats.preamble_detection_rate:.2f}",
            f"{stats.feedback_error_rate:.2f}",
        ])
    return rows, detection, feedback_error


def test_preamble_and_feedback_reliability(benchmark):
    rows, detection, feedback_error = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = print_figure(
        "Preamble detection and feedback decoding vs distance (lake)",
        ["distance", "preamble detection rate", "feedback error rate"],
        rows,
        notes="Paper: detection 0.99/1.0/1.0/0.96 at 5/10/20/30 m; feedback "
              "errors about 1 in 100 packets at every distance.",
    )
    benchmark.extra_info["table"] = table
    # Detection is essentially perfect at short range and degrades only at
    # the longest range; feedback errors remain the exception, not the rule.
    assert detection[5.0] >= 0.95
    assert detection[10.0] >= 0.95
    assert detection[30.0] >= 0.6
    assert all(rate <= 0.35 for rate in feedback_error.values())
