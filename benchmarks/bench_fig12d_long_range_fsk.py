"""Fig. 12d -- longer ranges with lower bit rates (FSK beacons at the beach).

To reach beyond the OFDM mode's range the paper lengthens the symbol to
50/100/200 ms and encodes one frequency per symbol, giving 20/10/5 bps.
Measured at the beach down to 113 m, the uncoded BER stays below 1 % for
5 and 10 bps up to the maximum distance.
"""

import numpy as np

from benchmarks._common import print_figure
from repro.core.beacon import FSKBeacon
from repro.environments.factory import build_channel
from repro.environments.sites import BEACH

DISTANCES_M = (30.0, 60.0, 100.0, 113.0)
RATES_BPS = (5, 10, 20)
BITS_PER_TRIAL = 24
TRIALS = 3


def _ber(rate, distance, seed):
    beacon = FSKBeacon(bit_rate_bps=rate)
    channel = build_channel(site=BEACH, distance_m=distance, seed=seed)
    rng = np.random.default_rng(seed)
    errors = 0
    total = 0
    for trial in range(TRIALS):
        channel.randomize(rng)
        bits = rng.integers(0, 2, BITS_PER_TRIAL)
        received = channel.transmit(beacon.encode(bits), rng).samples
        decoded = beacon.decode(received, BITS_PER_TRIAL)
        errors += int(np.count_nonzero(decoded.bits != bits))
        total += BITS_PER_TRIAL
    return errors / total


def _run():
    rows = []
    results = {}
    for distance in DISTANCES_M:
        row = [f"{distance:.0f} m"]
        for rate in RATES_BPS:
            ber = _ber(rate, distance, seed=int(distance) * 10 + rate)
            results[(distance, rate)] = ber
            row.append(f"{ber:.3f}")
        rows.append(row)
    return rows, results


def test_fig12d_long_range_fsk(benchmark):
    rows, results = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 12d -- uncoded BER of the low-rate FSK mode vs distance (beach)",
        ["distance"] + [f"{r} bps" for r in RATES_BPS],
        rows,
        notes="Paper: BER below 1 % for 5 and 10 bps up to 113 m; the 20 bps "
              "mode degrades sooner.",
    )
    benchmark.extra_info["table"] = table
    # The slowest rates must remain essentially error-free at the longest range.
    assert results[(113.0, 5)] <= 0.05
    assert results[(113.0, 10)] <= 0.10
    # Lower rates are never worse than the 20 bps mode at maximum distance.
    assert results[(113.0, 5)] <= results[(113.0, 20)] + 1e-9
