"""Fig. 10 -- effect of device depth (museum site, 9 m water column).

The paper fixes the horizontal distance at 5 m and submerges both phones to
2, 5 and 7 m.  Near the surface (2 m) and near the bottom (7 m) multipath is
strongest, raising the PER of the fixed-bandwidth schemes, while the
adaptive scheme obtains significantly lower PER at every depth.
"""

from benchmarks._common import CDF_PERCENTILES, cdf_row, print_figure, run_link, scheme_label
from repro.core.baselines import FIXED_BAND_SCHEMES
from repro.environments.sites import MUSEUM

DEPTHS_M = (2.0, 5.0, 7.0)
NUM_PACKETS = 20


def _run():
    bitrate_rows, per_rows = [], []
    adaptive_pers, fixed_pers = [], []
    for i, depth in enumerate(DEPTHS_M):
        adaptive = run_link(MUSEUM, 5.0, "adaptive", NUM_PACKETS, seed=60 + i,
                            tx_depth_m=depth, rx_depth_m=depth)
        bitrate_rows.append([f"{depth:.0f} m"] + cdf_row(adaptive.bitrates_bps))
        row = [f"{depth:.0f} m", f"{adaptive.packet_error_rate:.2f}"]
        adaptive_pers.append(adaptive.packet_error_rate)
        worst_fixed = 0.0
        for scheme in FIXED_BAND_SCHEMES:
            fixed = run_link(MUSEUM, 5.0, scheme, NUM_PACKETS, seed=60 + i,
                             tx_depth_m=depth, rx_depth_m=depth)
            row.append(f"{fixed.packet_error_rate:.2f}")
            worst_fixed = max(worst_fixed, fixed.packet_error_rate)
        fixed_pers.append(worst_fixed)
        per_rows.append(row)
    return bitrate_rows, per_rows, adaptive_pers, fixed_pers


def test_fig10_depth(benchmark):
    bitrate_rows, per_rows, adaptive_pers, fixed_pers = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    table_a = print_figure(
        "Fig. 10a -- selected coded bitrate CDF by depth (museum, 5 m range)",
        ["depth"] + [f"p{p}" for p in CDF_PERCENTILES],
        bitrate_rows,
    )
    table_b = print_figure(
        "Fig. 10b -- packet error rate by depth",
        ["depth", "adaptive (ours)"] + [scheme_label(s) for s in FIXED_BAND_SCHEMES],
        per_rows,
        notes="Paper: the adaptive scheme obtains significantly lower PER than "
              "the fixed bandwidth schemes at all depths.",
    )
    benchmark.extra_info["table"] = table_a + table_b
    # Shape: averaged over the three depths, the adaptive scheme is at least
    # as reliable as the worst fixed scheme, and it never degrades badly at
    # any single depth (the paper reports it being best at every depth).
    import numpy as np

    assert np.mean(adaptive_pers) <= np.mean(fixed_pers) + 1e-9
    assert all(a <= 0.25 for a in adaptive_pers)
