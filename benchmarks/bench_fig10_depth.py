"""Fig. 10 -- effect of device depth (museum site, 9 m water column).

The paper fixes the horizontal distance at 5 m and submerges both phones to
2, 5 and 7 m.  Near the surface (2 m) and near the bottom (7 m) multipath is
strongest, raising the PER of the fixed-bandwidth schemes, while the
adaptive scheme obtains significantly lower PER at every depth.
"""

from benchmarks._common import (
    ALL_SCHEMES, CDF_PERCENTILES, cdf_row, print_figure, runner, scheme_label,
)
from repro.core.baselines import FIXED_BAND_SCHEMES
from repro.environments.sites import MUSEUM
from repro.experiments import Scenario, Sweep

DEPTHS_M = (2.0, 5.0, 7.0)
NUM_PACKETS = 20

#: Both phones share the depth, and the seed follows the depth index.
SWEEP = (
    Sweep(Scenario(site=MUSEUM, distance_m=5.0, num_packets=NUM_PACKETS))
    .paired(
        tx_depth_m=list(DEPTHS_M),
        rx_depth_m=list(DEPTHS_M),
        seed=[60 + i for i in range(len(DEPTHS_M))],
    )
    .over(scheme=list(ALL_SCHEMES))
)


def _run():
    results = runner().run(SWEEP)
    bitrate_rows, per_rows = [], []
    adaptive_pers, fixed_pers = [], []
    for depth in DEPTHS_M:
        adaptive = results.lookup(tx_depth_m=depth, scheme="adaptive")
        bitrate_rows.append([f"{depth:.0f} m"] + cdf_row(adaptive.finite_bitrates_bps))
        row = [f"{depth:.0f} m", f"{adaptive.packet_error_rate:.2f}"]
        adaptive_pers.append(adaptive.packet_error_rate)
        worst_fixed = 0.0
        for scheme in FIXED_BAND_SCHEMES:
            fixed = results.lookup(tx_depth_m=depth, scheme=scheme)
            row.append(f"{fixed.packet_error_rate:.2f}")
            worst_fixed = max(worst_fixed, fixed.packet_error_rate)
        fixed_pers.append(worst_fixed)
        per_rows.append(row)
    return bitrate_rows, per_rows, adaptive_pers, fixed_pers


def test_fig10_depth(benchmark):
    bitrate_rows, per_rows, adaptive_pers, fixed_pers = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    table_a = print_figure(
        "Fig. 10a -- selected coded bitrate CDF by depth (museum, 5 m range)",
        ["depth"] + [f"p{p}" for p in CDF_PERCENTILES],
        bitrate_rows,
    )
    table_b = print_figure(
        "Fig. 10b -- packet error rate by depth",
        ["depth", "adaptive (ours)"] + [scheme_label(s) for s in FIXED_BAND_SCHEMES],
        per_rows,
        notes="Paper: the adaptive scheme obtains significantly lower PER than "
              "the fixed bandwidth schemes at all depths.",
    )
    benchmark.extra_info["table"] = table_a + table_b
    # Shape: averaged over the three depths, the adaptive scheme is at least
    # as reliable as the worst fixed scheme, and it never degrades badly at
    # any single depth (the paper reports it being best at every depth).
    import numpy as np

    assert np.mean(adaptive_pers) <= np.mean(fixed_pers) + 1e-9
    assert all(a <= 0.25 for a in adaptive_pers)
