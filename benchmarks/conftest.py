"""Benchmark-suite configuration.

Every benchmark prints the rows/series of the paper figure it reproduces in
addition to being timed by pytest-benchmark.  Because pytest captures
per-test stdout, the collected figure tables are re-emitted in the terminal
summary (so they land in ``bench_output.txt``) and are also appended to
``benchmarks/results/figure_tables.txt`` for later inspection.  The results
file is truncated once per pytest session (by the first table written), so
it reflects the latest session instead of growing without bound.
"""


def pytest_sessionstart(session):
    # The first figure table of this session truncates the results file.
    from benchmarks._common import reset_results_file

    reset_results_file()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    from benchmarks._common import FIGURE_TABLES

    if not FIGURE_TABLES:
        return
    terminalreporter.section("reproduced paper figures")
    for table in FIGURE_TABLES:
        terminalreporter.write(table)
