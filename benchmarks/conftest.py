"""Benchmark-suite configuration.

Every benchmark prints the rows/series of the paper figure it reproduces in
addition to being timed by pytest-benchmark.  Because pytest captures
per-test stdout, the collected figure tables are re-emitted in the terminal
summary (so they land in ``bench_output.txt``) and are also appended to
``benchmarks/results/figure_tables.txt`` for later inspection.
"""

import pathlib


def pytest_sessionstart(session):
    # Start each benchmark session with a fresh results file.
    results = pathlib.Path(__file__).parent / "results" / "figure_tables.txt"
    if results.exists():
        results.unlink()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    from benchmarks._common import FIGURE_TABLES

    if not FIGURE_TABLES:
        return
    terminalreporter.section("reproduced paper figures")
    for table in FIGURE_TABLES:
        terminalreporter.write(table)
