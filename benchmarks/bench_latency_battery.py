"""Section 5 (discussion) -- messaging latency accounting.

The paper argues its bit rates are sufficient for messaging: the app sends
one of 240 messages (about 8 bits, 12 after coding), which takes roughly
half a second at 25 bps, and at 1 kbps even a 50-character free-text
message takes about half a second.  (Battery life is a property of the
phone hardware and is out of scope for the simulator; see DESIGN.md.)

The benchmark reproduces the latency arithmetic plus the full protocol
airtime (preamble + feedback + data) for representative selected bands.
"""

from benchmarks._common import print_figure
from repro.core.rates import coded_bitrate_bps, message_latency_s, packet_airtime_s


def _run():
    rows = [
        ["one hand signal (8 bits -> 12 coded) at 25 bps",
         f"{message_latency_s(12, 25.0):.2f}"],
        ["one hand signal at 133 bps (30 m median band)",
         f"{message_latency_s(12, 133.3):.2f}"],
        ["two hand signals (16 bits -> 24 coded) at 633 bps (5 m median band)",
         f"{message_latency_s(24, 633.3):.2f}"],
        ["50-character message (400 bits) at 1 kbps",
         f"{message_latency_s(400, 1000.0):.2f}"],
        ["full protocol airtime, 60-bin band (preamble+feedback+data)",
         f"{packet_airtime_s(16, 60):.2f}"],
        ["full protocol airtime, 4-bin band",
         f"{packet_airtime_s(16, 4):.2f}"],
        ["SoS beacon (6 bits at 10 bps)",
         f"{message_latency_s(6, 10.0):.2f}"],
    ]
    return rows


def test_messaging_latency(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = print_figure(
        "Messaging latency (seconds)",
        ["scenario", "latency (s)"],
        rows,
        notes="Paper: a selected message takes ~0.5 s at 25 bps; 50 characters "
              "take ~0.5 s at 1 kbps.",
    )
    benchmark.extra_info["table"] = table
    assert float(rows[0][1]) < 1.0
    assert float(rows[3][1]) < 1.0
    assert coded_bitrate_bps(60) > 1500.0
