"""Fig. 13 -- the selected band narrows as distance (attenuation) grows.

The paper shows example spectra at two distances with the band picked by
the adaptation algorithm overlaid: at short range the algorithm uses most
of the 1-4 kHz band, at long range it concentrates the transmit power on a
narrow slice of good subcarriers.
"""

import numpy as np

from benchmarks._common import print_figure, run_link
from repro.environments.sites import LAKE

DISTANCES_M = (5.0, 10.0, 20.0, 30.0)
NUM_PACKETS = 15


def _run():
    rows = []
    widths = {}
    for i, distance in enumerate(DISTANCES_M):
        stats = run_link(LAKE, distance, "adaptive", NUM_PACKETS, seed=130 + i)
        bands = [r.receiver_band for r in stats.results if r.receiver_band is not None]
        starts = [b.start_frequency_hz for b in bands]
        ends = [b.end_frequency_hz for b in bands]
        width_hz = [b.num_bins * 50.0 for b in bands]
        widths[distance] = float(np.median(width_hz))
        rows.append([
            f"{distance:.0f} m",
            f"{np.median(starts):.0f}",
            f"{np.median(ends):.0f}",
            f"{np.median(width_hz):.0f}",
            f"{np.median([b.num_bins for b in bands]):.0f}",
        ])
    return rows, widths


def test_fig13_band_vs_distance(benchmark):
    rows, widths = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 13 -- median selected band vs distance (lake)",
        ["distance", "f_begin (Hz)", "f_end (Hz)", "bandwidth (Hz)", "bins"],
        rows,
        notes="Paper: the system uses a smaller frequency band in response to "
              "increased attenuation at larger distances.",
    )
    benchmark.extra_info["table"] = table
    assert widths[30.0] < widths[5.0], "the selected band must narrow with distance"
    assert widths[5.0] >= 500.0
