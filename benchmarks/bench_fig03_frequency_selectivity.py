"""Fig. 3a/b -- frequency selectivity across device pairs and locations.

The paper probes a 1-5 kHz chirp between device pairs 5 m apart (Fig. 3a)
and between two Galaxy S9s at 10 m in different locations (Fig. 3b), and
observes uneven responses with deep notches at device- and
location-specific frequencies plus a roll-off above 4 kHz.

This benchmark reproduces both panels: it pushes the same chirp through the
simulated end-to-end channel and reports, per curve, the mean in-band gain,
the peak-to-trough swing (frequency selectivity) and the frequency of the
deepest notch.
"""

import numpy as np

from benchmarks._common import print_figure
from repro.devices.models import GALAXY_S9, GALAXY_WATCH_4, ONEPLUS_8_PRO, PIXEL_4
from repro.dsp.chirp import lfm_chirp
from repro.dsp.spectrum import frequency_response_from_probe
from repro.environments.factory import build_channel
from repro.environments.sites import BRIDGE, LAKE, MUSEUM, PARK

PROBE_FREQS = np.arange(1000.0, 5000.0, 50.0)
IN_BAND = (PROBE_FREQS >= 1000.0) & (PROBE_FREQS < 4000.0)
ABOVE_BAND = PROBE_FREQS >= 4000.0


def _measure_response(channel, seed):
    chirp = lfm_chirp(1000.0, 5000.0, 0.5, 48000.0)
    received = channel.transmit(chirp, rng=seed).samples
    return frequency_response_from_probe(chirp, received, 48000.0, PROBE_FREQS)


def _row(label, response):
    in_band = response[IN_BAND]
    above = response[ABOVE_BAND]
    notch_freq = PROBE_FREQS[IN_BAND][int(np.argmin(in_band))]
    return [
        label,
        f"{in_band.mean():.1f}",
        f"{in_band.max() - in_band.min():.1f}",
        f"{notch_freq:.0f}",
        f"{above.mean() - in_band.mean():.1f}",
    ]


def _run_panel_a():
    pairs = [
        ("S9 -> S9", GALAXY_S9, GALAXY_S9),
        ("S9 -> Pixel 4", GALAXY_S9, PIXEL_4),
        ("Pixel 4 -> OnePlus 8 Pro", PIXEL_4, ONEPLUS_8_PRO),
        ("S9 -> Watch 4", GALAXY_S9, GALAXY_WATCH_4),
    ]
    rows = []
    for i, (label, tx, rx) in enumerate(pairs):
        channel = build_channel(site=LAKE, distance_m=5.0, tx_device=tx, rx_device=rx, seed=10 + i)
        rows.append(_row(label, _measure_response(channel, 100 + i)))
    return rows


def _run_panel_b():
    rows = []
    for i, site in enumerate((BRIDGE, PARK, LAKE, MUSEUM)):
        channel = build_channel(site=site, distance_m=10.0, seed=40 + i)
        rows.append(_row(f"S9 -> S9 at {site.name}", _measure_response(channel, 200 + i)))
    return rows


def test_fig03a_device_pairs(benchmark):
    rows = benchmark.pedantic(_run_panel_a, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 3a -- frequency selectivity across device pairs (5 m, lake)",
        ["device pair", "mean 1-4 kHz gain (dB)", "peak-to-trough (dB)",
         "deepest notch (Hz)", ">4 kHz roll-off (dB)"],
        rows,
        notes="Paper: responses are uneven, notch frequencies vary per device, "
              "and the response diminishes above 4 kHz.",
    )
    benchmark.extra_info["table"] = table
    swings = [float(r[2]) for r in rows]
    rolloffs = [float(r[4]) for r in rows]
    assert all(s > 6.0 for s in swings), "every device pair should show frequency selectivity"
    assert all(r < 0.0 for r in rolloffs), "response must diminish above 4 kHz"
    notches = {r[3] for r in rows}
    assert len(notches) > 1, "notch frequencies should differ across device pairs"


def test_fig03b_locations(benchmark):
    rows = benchmark.pedantic(_run_panel_b, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 3b -- frequency selectivity across locations (S9 pair, 10 m)",
        ["link", "mean 1-4 kHz gain (dB)", "peak-to-trough (dB)",
         "deepest notch (Hz)", ">4 kHz roll-off (dB)"],
        rows,
        notes="Paper: multipath moves the notches, so the best frequencies "
              "change with location.",
    )
    benchmark.extra_info["table"] = table
    notches = {r[3] for r in rows}
    assert len(notches) > 1, "notch frequencies should differ across locations"
