"""Fig. 11 -- testing in deeper waters (bay site, 12 m depth, hard case).

The paper submerges the phones to about 12 m in a 15 m deep bay inside a
hard polycarbonate case rated for that depth (which attenuates more than
the usual PVC pouch), with the two phones on either side of a kayak
(roughly 3.5 m apart).  The median selected coded bitrate was 133 bps,
demonstrating that communication still works under these conditions.
"""

from benchmarks._common import CDF_PERCENTILES, cdf_row, print_figure, run_link
from repro.devices.case import HARD_CASE, SOFT_POUCH
from repro.environments.sites import BAY

NUM_PACKETS = 20


def _run():
    hard = run_link(BAY, 3.5, "adaptive", NUM_PACKETS, seed=70,
                    tx_depth_m=12.0, rx_depth_m=12.0, case=HARD_CASE)
    shallow = run_link(BAY, 3.5, "adaptive", NUM_PACKETS, seed=71,
                       tx_depth_m=1.0, rx_depth_m=1.0, case=SOFT_POUCH)
    rows = [
        ["12 m deep, hard case"] + cdf_row(hard.bitrates_bps)
        + [f"{hard.packet_error_rate:.2f}"],
        ["1 m deep, soft pouch (reference)"] + cdf_row(shallow.bitrates_bps)
        + [f"{shallow.packet_error_rate:.2f}"],
    ]
    return rows, hard, shallow


def test_fig11_deep_water(benchmark):
    rows, hard, shallow = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 11 -- deeper water with a hard waterproof case (bay, 3.5 m range)",
        ["configuration"] + [f"p{p} bps" for p in CDF_PERCENTILES] + ["PER"],
        rows,
        notes="Paper: the median selected bitrate at 12 m depth inside the hard "
              "case was 133 bps -- communication still works, at a reduced rate.",
    )
    benchmark.extra_info["table"] = table
    # Communication must still work at depth, at a lower rate than the
    # shallow soft-pouch reference.
    assert hard.preamble_detection_rate > 0.8
    assert hard.median_bitrate_bps > 60.0
    assert hard.median_bitrate_bps <= shallow.median_bitrate_bps
