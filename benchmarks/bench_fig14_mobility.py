"""Fig. 14 -- effect of mobility (static, slow, fast motion at the lake, 5 m).

The paper moves one phone on a rope (average accelerations of 2.5 and
5.1 m/s^2 for "slow" and "fast") and reports (a) the CDF of the selected
bitrate, (b) the PER, and (c) the uncoded BER with and without differential
coding.

Paper outcome: the median bitrate falls from 640 bps (static) to 433/336
bps (slow/fast); PER rises from ~1 % to ~8 %; without differential coding
the BER exceeds 10 % under motion while with it the BER stays near 1 %.
"""

from benchmarks._common import CDF_PERCENTILES, cdf_row, print_figure, runner
from repro.channel.motion import FAST_MOTION, SLOW_MOTION, STATIC_MOTION
from repro.environments.sites import LAKE
from repro.experiments import ModemSpec, Scenario, Sweep

MOTIONS = (("static", STATIC_MOTION), ("slow", SLOW_MOTION), ("fast", FAST_MOTION))
NUM_PACKETS = 20
#: The differential-coding comparison uses long bursts (many OFDM symbols per
#: packet) so the channel has time to change *within* a packet, which is the
#: effect differential coding protects against.
LONG_PAYLOAD_BITS = 192
LONG_PACKETS = 8

_MOTION_MODELS = [motion for _, motion in MOTIONS]

#: Standard short-packet runs, seed following the motion index.
STANDARD_SWEEP = (
    Sweep(Scenario(site=LAKE, distance_m=5.0, num_packets=NUM_PACKETS))
    .paired(motion=_MOTION_MODELS, seed=[140 + i for i in range(len(MOTIONS))])
)

#: Long-burst runs with and without differential coding, sharing seeds so
#: the two ablations see identical channels.
DIFFERENTIAL_SWEEP = (
    Sweep(Scenario(site=LAKE, distance_m=5.0, num_packets=LONG_PACKETS))
    .paired(motion=_MOTION_MODELS, seed=[340 + i for i in range(len(MOTIONS))])
    .over(modem=[
        ModemSpec(payload_bits=LONG_PAYLOAD_BITS),
        ModemSpec(payload_bits=LONG_PAYLOAD_BITS, use_differential=False),
    ])
)


def _run():
    results = runner().run(list(STANDARD_SWEEP) + list(DIFFERENTIAL_SWEEP))
    bitrate_rows, per_rows, ber_rows = [], [], []
    pers, bers_with, bers_without = {}, {}, {}
    for label, motion in MOTIONS:
        standard = results.lookup(motion=motion, num_packets=NUM_PACKETS)
        with_diff = results.lookup(
            motion=motion, modem=ModemSpec(payload_bits=LONG_PAYLOAD_BITS))
        without_diff = results.lookup(
            motion=motion,
            modem=ModemSpec(payload_bits=LONG_PAYLOAD_BITS, use_differential=False))
        pers[label] = standard.packet_error_rate
        bers_with[label] = with_diff.coded_bit_error_rate
        bers_without[label] = without_diff.coded_bit_error_rate
        bitrate_rows.append([label] + cdf_row(standard.finite_bitrates_bps))
        per_rows.append([label, f"{standard.packet_error_rate:.2f}"])
        ber_rows.append([label, f"{with_diff.coded_bit_error_rate:.3f}",
                         f"{without_diff.coded_bit_error_rate:.3f}"])
    return bitrate_rows, per_rows, ber_rows, pers, bers_with, bers_without


def test_fig14_mobility(benchmark):
    (bitrate_rows, per_rows, ber_rows, pers, bers_with, bers_without) = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    table_a = print_figure(
        "Fig. 14a -- selected coded bitrate CDF vs mobility (lake, 5 m)",
        ["motion"] + [f"p{p}" for p in CDF_PERCENTILES],
        bitrate_rows,
        notes="Paper medians: 640 bps static, 433 bps slow, 336 bps fast.",
    )
    table_b = print_figure("Fig. 14b -- PER vs mobility", ["motion", "PER"], per_rows,
                           notes="Paper: 1.2 % static rising to 7.6 % fast.")
    table_c = print_figure(
        "Fig. 14c -- uncoded BER with vs without differential coding",
        ["motion", "with differential", "without differential"],
        ber_rows,
        notes="Paper: without differential coding the BER exceeds 10 % under "
              "motion; with it the BER stays around 1 %.",
    )
    benchmark.extra_info["table"] = table_a + table_b + table_c
    # Shape checks: mobility lowers the selected bitrate, and differential
    # coding is what keeps the BER low under motion.
    medians = {row[0]: float(row[3]) for row in bitrate_rows}  # p50 column
    assert medians["fast"] <= medians["static"] + 1e-9
    assert bers_without["fast"] >= bers_with["fast"]
    assert bers_without["fast"] + bers_without["slow"] > bers_with["fast"] + bers_with["slow"]
    assert bers_with["fast"] < 0.2
