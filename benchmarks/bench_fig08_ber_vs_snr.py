"""Fig. 8 -- per-subcarrier BER versus SNR, compared with theoretical BPSK.

The paper transmits 500 BPSK-modulated OFDM symbols over the full 1-4 kHz
band at 5, 10 and 20 m, computes the uncoded BER of each subcarrier as a
function of that subcarrier's SNR, and shows that the empirical curve
follows the theoretical BPSK curve.

The benchmark does the same over the simulated bridge channel: long bursts
of known coded bits are sent on all 60 subcarriers (interleaving disabled so
each coded bit maps to a fixed subcarrier), per-subcarrier SNR is estimated
from the preamble, and the measured BER is bucketed by SNR and compared
against ``Q(sqrt(2*SNR))``.
"""

import numpy as np

from benchmarks._common import print_figure
from repro.analysis.ber import bpsk_ber_theoretical
from repro.core.adaptation import selection_from_bins
from repro.core.modem import AquaModem
from repro.environments.factory import build_link_pair
from repro.environments.sites import BRIDGE

PAYLOAD_BITS = 640            # -> 960 coded bits = 16 OFDM symbols over 60 bins
PACKETS_PER_DISTANCE = 4
DISTANCES_M = (5.0, 10.0, 20.0)
SNR_BUCKETS_DB = np.array([-2.0, 0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0])


def _collect_samples():
    """Return arrays of (per-bin SNR, per-bin errors, per-bin bits)."""
    modem = AquaModem(use_interleaving=False)
    config = modem.ofdm_config
    band = selection_from_bins(config.first_data_bin, config.last_data_bin, config)
    snr_samples, error_samples, bit_samples = [], [], []
    for d_index, distance in enumerate(DISTANCES_M):
        forward, _ = build_link_pair(site=BRIDGE, distance_m=distance, seed=500 + d_index)
        rng = np.random.default_rng(900 + d_index)
        for packet_index in range(PACKETS_PER_DISTANCE):
            forward.randomize(rng)
            payload = rng.integers(0, 2, PAYLOAD_BITS)
            header = modem.build_preamble_and_header(1)
            burst = modem.encoder.encode(payload, band)
            silence = np.zeros(2 * config.extended_symbol_length)
            waveform = np.concatenate([header.waveform, silence, burst.waveform])
            received = modem.filter_received(forward.transmit(waveform, rng).samples)
            detection = modem.detect_preamble(received)
            if not detection.detected:
                continue
            estimate = modem.estimate_snr(received, detection.start_index)
            data_start = (detection.start_index + modem.preamble_generator.total_length
                          + config.extended_symbol_length + silence.size)
            try:
                decoded = modem.decoder.decode(received[data_start:], band, PAYLOAD_BITS,
                                               apply_bandpass=False)
            except ValueError:
                continue
            reference = modem.decoder.coded_reference_bits(payload)
            errors = (decoded.hard_coded_bits != reference).astype(int)
            # Without interleaving, coded bit i maps to bin (i mod 60).
            num_bins = band.num_bins
            per_bin_errors = np.zeros(num_bins)
            per_bin_bits = np.zeros(num_bins)
            for i, err in enumerate(errors):
                per_bin_errors[i % num_bins] += err
                per_bin_bits[i % num_bins] += 1
            snr_samples.append(estimate.snr_db)
            error_samples.append(per_bin_errors)
            bit_samples.append(per_bin_bits)
    return (np.concatenate(snr_samples), np.concatenate(error_samples),
            np.concatenate(bit_samples))


def _run():
    snr, errors, bits = _collect_samples()
    rows = []
    for low, high in zip(SNR_BUCKETS_DB[:-1], SNR_BUCKETS_DB[1:]):
        mask = (snr >= low) & (snr < high)
        total_bits = bits[mask].sum()
        if total_bits < 50:
            continue
        measured = errors[mask].sum() / total_bits
        theoretical = float(bpsk_ber_theoretical((low + high) / 2.0))
        rows.append([f"{low:.0f} to {high:.0f}",
                     f"{measured:.3f}", f"{theoretical:.3f}", f"{int(total_bits)}"])
    return rows


def test_fig08_ber_vs_snr(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = print_figure(
        "Fig. 8 -- uncoded BER vs per-subcarrier SNR (bridge, 5/10/20 m)",
        ["SNR bucket (dB)", "measured BER", "theoretical BPSK BER", "bits"],
        rows,
        notes="Paper: the empirical curve follows the theoretical BPSK trend.",
    )
    benchmark.extra_info["table"] = table
    assert len(rows) >= 3, "need several populated SNR buckets"
    measured = np.array([float(r[1]) for r in rows])
    # BER must decrease (weakly) as SNR increases, matching the theoretical trend.
    assert measured[-1] <= measured[0]
    assert measured[-1] < 0.05, "high-SNR buckets should have low BER"
