"""Shared helpers for the benchmark harness.

Each ``bench_fig*.py`` file regenerates one figure of the paper's evaluation:
it sweeps the same parameters, prints the same rows/series the figure
reports, and lets pytest-benchmark time the underlying simulation.  The
helpers here keep the individual benchmarks short and consistent.

Packet counts are deliberately smaller than the paper's (which used 100-500
packets per point measured over hours in real water) so that the whole
benchmark suite completes in minutes; the trends are stable at these counts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import format_table
from repro.channel.motion import MotionModel, STATIC_MOTION
from repro.core.baselines import FixedBandScheme
from repro.core.modem import AquaModem
from repro.devices.case import SOFT_POUCH, WaterproofCase
from repro.devices.models import GALAXY_S9, DeviceModel
from repro.environments.factory import build_link_pair
from repro.environments.sites import Site
from repro.link.session import LinkSession, LinkStatistics

#: Default number of packets per configuration point.
DEFAULT_PACKETS = 25

#: Percentiles printed for bitrate CDFs.
CDF_PERCENTILES = (10, 25, 50, 75, 90)


def run_link(
    site: Site,
    distance_m: float,
    scheme: FixedBandScheme | str = "adaptive",
    num_packets: int = DEFAULT_PACKETS,
    seed: int = 0,
    motion: MotionModel = STATIC_MOTION,
    tx_depth_m: float = 1.0,
    rx_depth_m: float | None = None,
    orientation_deg: float = 0.0,
    tx_device: DeviceModel = GALAXY_S9,
    rx_device: DeviceModel = GALAXY_S9,
    case: WaterproofCase = SOFT_POUCH,
    modem: AquaModem | None = None,
) -> LinkStatistics:
    """Run one experiment point and return its link statistics."""
    forward, backward = build_link_pair(
        site=site,
        distance_m=distance_m,
        seed=seed,
        tx_depth_m=tx_depth_m,
        rx_depth_m=rx_depth_m,
        motion=motion,
        orientation_deg=orientation_deg,
        tx_device=tx_device,
        rx_device=rx_device,
        tx_case=case,
        rx_case=case,
    )
    session = LinkSession(forward, backward, modem=modem, scheme=scheme, seed=seed + 1)
    return session.run_many(num_packets)


def scheme_label(scheme: FixedBandScheme | str) -> str:
    """Human-readable label for a scheme."""
    return "adaptive (ours)" if isinstance(scheme, str) else scheme.name


def cdf_row(values: np.ndarray) -> list[str]:
    """Return formatted percentile values for a bitrate CDF row."""
    if values.size == 0:
        return ["n/a"] * len(CDF_PERCENTILES)
    return [f"{np.percentile(values, p):.0f}" for p in CDF_PERCENTILES]


#: All figure tables produced during this benchmark session, in order.  The
#: conftest terminal-summary hook prints them after the timing table so they
#: appear in ``bench_output.txt`` even though pytest captures per-test stdout,
#: and they are also written to ``benchmarks/results/figure_tables.txt``.
FIGURE_TABLES: list[str] = []


def print_figure(title: str, headers: list[str], rows: list[list[object]], notes: str = "") -> str:
    """Print a figure table and return it as a string (for extra_info)."""
    table = format_table(headers, rows)
    banner = "=" * len(title)
    text = f"\n{title}\n{banner}\n{table}\n"
    if notes:
        text += f"{notes}\n"
    print(text)
    FIGURE_TABLES.append(text)
    _append_to_results_file(text)
    return text


def _append_to_results_file(text: str) -> None:
    """Append a figure table to the persistent results file."""
    import pathlib

    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    with open(results_dir / "figure_tables.txt", "a", encoding="utf-8") as handle:
        handle.write(text)
