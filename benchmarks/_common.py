"""Shared helpers for the benchmark harness.

Each ``bench_fig*.py`` file regenerates one figure of the paper's evaluation:
it sweeps the same parameters, prints the same rows/series the figure
reports, and lets pytest-benchmark time the underlying simulation.  The
helpers here keep the individual benchmarks short and consistent.

Experiment points are declared with :mod:`repro.experiments` --
:class:`~repro.experiments.Scenario` / :class:`~repro.experiments.Sweep`
describe a figure's grid and :func:`runner` executes it across worker
processes.  :func:`run_link` remains as a thin compatibility shim for the
benchmarks that still drive single points imperatively.

Packet counts are deliberately smaller than the paper's (which used 100-500
packets per point measured over hours in real water) so that the whole
benchmark suite completes in minutes; the trends are stable at these counts.
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.metrics import format_table
from repro.channel.motion import MotionModel, STATIC_MOTION
from repro.core.baselines import FixedBandScheme
from repro.core.modem import AquaModem
from repro.devices.case import SOFT_POUCH, WaterproofCase
from repro.devices.models import GALAXY_S9, DeviceModel
from repro.environments.sites import Site
from repro.experiments import ExperimentRunner, Scenario
from repro.link.session import LinkStatistics

#: Default number of packets per configuration point.
DEFAULT_PACKETS = 25

#: Percentiles printed for bitrate CDFs.
CDF_PERCENTILES = (10, 25, 50, 75, 90)

#: Scheme axis shared by most figures: the adaptive scheme plus the three
#: fixed-bandwidth baselines, in the order the figure legends use.
ALL_SCHEMES = ("adaptive", "fixed-3k", "fixed-1.5k", "fixed-0.5k")


def runner(max_workers: int | None = None) -> ExperimentRunner:
    """Experiment runner for benchmark sweeps.

    Parallelism defaults to the machine's core count (scenarios are
    independent and seeded individually, so results are bit-identical to a
    serial run); set ``REPRO_BENCH_WORKERS=1`` to force serial execution.
    """
    if max_workers is None:
        env = os.environ.get("REPRO_BENCH_WORKERS")
        if env:
            try:
                max_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_BENCH_WORKERS must be an integer, got {env!r}"
                ) from None
    return ExperimentRunner(max_workers=max_workers)


def run_link(
    site: Site,
    distance_m: float,
    scheme: FixedBandScheme | str = "adaptive",
    num_packets: int = DEFAULT_PACKETS,
    seed: int = 0,
    motion: MotionModel = STATIC_MOTION,
    tx_depth_m: float = 1.0,
    rx_depth_m: float | None = None,
    orientation_deg: float = 0.0,
    tx_device: DeviceModel = GALAXY_S9,
    rx_device: DeviceModel = GALAXY_S9,
    case: WaterproofCase = SOFT_POUCH,
    modem: AquaModem | None = None,
) -> LinkStatistics:
    """Run one experiment point and return its link statistics.

    Legacy shim kept for the not-yet-migrated benchmarks; new code should
    declare a :class:`~repro.experiments.Scenario` instead (and go through
    :class:`~repro.experiments.ExperimentRunner` for whole grids).  The
    ``modem`` override bypasses the declarative
    :class:`~repro.experiments.ModemSpec`, so it runs the session directly.
    """
    scenario = Scenario(
        site=site,
        distance_m=distance_m,
        scheme=scheme,
        num_packets=num_packets,
        seed=seed,
        motion=motion,
        tx_depth_m=tx_depth_m,
        rx_depth_m=rx_depth_m,
        orientation_deg=orientation_deg,
        tx_device=tx_device,
        rx_device=rx_device,
        case=case,
    )
    return scenario.build_session(modem=modem).run_many(num_packets)


def scheme_label(scheme: FixedBandScheme | str) -> str:
    """Human-readable label for a scheme."""
    return "adaptive (ours)" if isinstance(scheme, str) else scheme.name


def cdf_row(values: np.ndarray) -> list[str]:
    """Return formatted percentile values for a bitrate CDF row."""
    if values.size == 0:
        return ["n/a"] * len(CDF_PERCENTILES)
    return [f"{np.percentile(values, p):.0f}" for p in CDF_PERCENTILES]


#: All figure tables produced during this benchmark session, in order.  The
#: conftest terminal-summary hook prints them after the timing table so they
#: appear in ``bench_output.txt`` even though pytest captures per-test stdout,
#: and they are also written to ``benchmarks/results/figure_tables.txt``.
FIGURE_TABLES: list[str] = []

#: Whether the persistent results file has been truncated by this process /
#: session yet.  The first append of a session opens the file in ``"w"``
#: mode, so the file never grows without bound across benchmark runs; the
#: conftest ``pytest_sessionstart`` hook resets the flag so one pytest
#: session truncates exactly once, however many benchmarks it runs.
_RESULTS_FILE_FRESH = False


def print_figure(title: str, headers: list[str], rows: list[list[object]], notes: str = "") -> str:
    """Print a figure table and return it as a string (for extra_info)."""
    table = format_table(headers, rows)
    banner = "=" * len(title)
    text = f"\n{title}\n{banner}\n{table}\n"
    if notes:
        text += f"{notes}\n"
    print(text)
    FIGURE_TABLES.append(text)
    _append_to_results_file(text)
    return text


def reset_results_file() -> None:
    """Start a fresh results file for this session.

    Removes the previous session's file immediately (so a session that
    produces no tables does not leave stale ones behind) and makes the next
    figure table start the file over.
    """
    global _RESULTS_FILE_FRESH
    _RESULTS_FILE_FRESH = False
    import pathlib

    results = pathlib.Path(__file__).parent / "results" / "figure_tables.txt"
    results.unlink(missing_ok=True)


def _append_to_results_file(text: str) -> None:
    """Append a figure table to the persistent results file.

    The first write of a session truncates the file (see
    :data:`_RESULTS_FILE_FRESH`).
    """
    import pathlib

    global _RESULTS_FILE_FRESH
    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    mode = "a" if _RESULTS_FILE_FRESH else "w"
    with open(results_dir / "figure_tables.txt", mode, encoding="utf-8") as handle:
        handle.write(text)
    _RESULTS_FILE_FRESH = True
