"""Ablation benches for the design choices called out in DESIGN.md.

These go beyond the paper's figures and quantify the contribution of the
individual mechanisms:

* the band-adaptation parameters (SNR threshold epsilon and conservative
  factor lambda),
* interleaving across subcarriers,
* the time-domain MMSE equalizer.

They complement Fig. 14c (which already ablates differential coding).
"""

import numpy as np

from benchmarks._common import print_figure
from repro.core.config import ProtocolConfig
from repro.core.modem import AquaModem
from repro.environments.factory import build_link_pair
from repro.environments.sites import LAKE
from repro.link.session import LinkSession

NUM_PACKETS = 15
DISTANCE_M = 20.0


def _run_with_modem(modem, seed):
    forward, backward = build_link_pair(site=LAKE, distance_m=DISTANCE_M, seed=seed)
    session = LinkSession(forward, backward, modem=modem, seed=seed)
    return session.run_many(NUM_PACKETS)


def _run_parameters():
    """Sweep epsilon and lambda of the band selection algorithm."""
    rows = []
    results = {}
    configurations = [
        ("paper (eps=7, lambda=0.8)", 7.0, 0.8),
        ("aggressive (eps=3, lambda=1.0)", 3.0, 1.0),
        ("very conservative (eps=12, lambda=0.5)", 12.0, 0.5),
    ]
    for i, (label, eps, lam) in enumerate(configurations):
        protocol = ProtocolConfig(snr_threshold_db=eps, conservative_lambda=lam)
        modem = AquaModem(protocol_config=protocol)
        stats = _run_with_modem(modem, 210 + i)
        results[label] = stats
        rows.append([label, f"{stats.packet_error_rate:.2f}",
                     f"{stats.median_bitrate_bps:.0f}"])
    return rows, results


def _run_components():
    """Disable one receive-chain component at a time."""
    rows = []
    results = {}
    variants = [
        ("full system", AquaModem()),
        ("no interleaving", AquaModem(use_interleaving=False)),
        ("no equalizer", AquaModem(use_equalizer=False)),
        ("no differential coding", AquaModem(use_differential=False)),
    ]
    for i, (label, modem) in enumerate(variants):
        stats = _run_with_modem(modem, 230 + i)
        results[label] = stats
        rows.append([label, f"{stats.packet_error_rate:.2f}",
                     f"{stats.coded_bit_error_rate:.3f}"])
    return rows, results


def test_ablation_band_adaptation_parameters(benchmark):
    rows, results = benchmark.pedantic(_run_parameters, rounds=1, iterations=1)
    table = print_figure(
        f"Ablation -- band selection parameters (lake, {DISTANCE_M:.0f} m)",
        ["configuration", "PER", "median bitrate (bps)"],
        rows,
        notes="Aggressive settings pick wider bands (higher bitrate, higher PER); "
              "very conservative settings sacrifice bitrate for reliability.",
    )
    benchmark.extra_info["table"] = table
    aggressive = results["aggressive (eps=3, lambda=1.0)"]
    conservative = results["very conservative (eps=12, lambda=0.5)"]
    assert aggressive.median_bitrate_bps >= conservative.median_bitrate_bps


def test_ablation_receive_chain_components(benchmark):
    rows, results = benchmark.pedantic(_run_components, rounds=1, iterations=1)
    table = print_figure(
        f"Ablation -- receive chain components (lake, {DISTANCE_M:.0f} m)",
        ["variant", "PER", "uncoded BER"],
        rows,
        notes="Removing the equalizer or differential coding degrades the link; "
              "interleaving matters most when errors cluster on subcarriers.",
    )
    benchmark.extra_info["table"] = table
    full = results["full system"]
    no_equalizer = results["no equalizer"]
    assert full.packet_error_rate <= no_equalizer.packet_error_rate + 0.2
