"""Fig. 17 -- effect of the OFDM subcarrier spacing (50 / 25 / 10 Hz).

The paper repeats the lake experiment at 5 m and 20 m with subcarrier
spacings of 50 Hz (20 ms symbols), 25 Hz (40 ms) and 10 Hz (100 ms).  At
5 m every spacing achieves ~1 % PER; at 20 m the 50 Hz spacing rises to
4.6 % while 25 Hz and 10 Hz stay below 1 %, because the finer frequency
resolution improves both the SNR estimate and the equalizer training.
"""

from benchmarks._common import CDF_PERCENTILES, cdf_row, print_figure, run_link
from repro.core.config import OFDMConfig
from repro.core.modem import AquaModem
from repro.environments.sites import LAKE

SPACINGS_HZ = (50.0, 25.0, 10.0)
DISTANCES_M = (5.0, 20.0)
NUM_PACKETS = 10


def _modem_for(spacing_hz):
    if spacing_hz == 50.0:
        return AquaModem()
    return AquaModem(ofdm_config=OFDMConfig().with_subcarrier_spacing(spacing_hz))


def _run():
    bitrate_rows, per_rows = [], []
    pers = {}
    for i, distance in enumerate(DISTANCES_M):
        for j, spacing in enumerate(SPACINGS_HZ):
            modem = _modem_for(spacing)
            stats = run_link(LAKE, distance, "adaptive", NUM_PACKETS,
                             seed=170 + 10 * i + j, modem=modem)
            pers[(distance, spacing)] = stats.packet_error_rate
            label = f"{distance:.0f} m / {spacing:.0f} Hz"
            bitrate_rows.append([label] + cdf_row(stats.bitrates_bps))
            per_rows.append([label, f"{stats.packet_error_rate:.2f}",
                             f"{stats.preamble_detection_rate:.2f}"])
    return bitrate_rows, per_rows, pers


def test_fig17_subcarrier_spacing(benchmark):
    bitrate_rows, per_rows, pers = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_ab = print_figure(
        "Fig. 17a/b -- selected coded bitrate CDF per subcarrier spacing (lake)",
        ["distance / spacing"] + [f"p{p}" for p in CDF_PERCENTILES],
        bitrate_rows,
    )
    table_c = print_figure(
        "Fig. 17c -- PER per subcarrier spacing",
        ["distance / spacing", "PER", "preamble detection rate"],
        per_rows,
        notes="Paper: ~1 % PER for all spacings at 5 m; at 20 m the 50 Hz "
              "spacing degrades (4.6 %) while 25/10 Hz stay below 1 %.",
    )
    benchmark.extra_info["table"] = table_ab + table_c
    # At 20 m at least one of the finer spacings should do as well as (or
    # better than) the 50 Hz default, and nothing should fall apart at 5 m.
    finer_best = min(pers[(20.0, 25.0)], pers[(20.0, 10.0)])
    assert finer_best <= max(pers[(20.0, 50.0)], 0.1) + 1e-9
    assert all(pers[(5.0, s)] <= 0.35 for s in SPACINGS_HZ)
