"""Fig. 12a-c -- range evaluation at the lake (5 to 30 m).

The paper submerges the phones to 1 m on ropes (so they sway slowly) and
measures, at 5/10/20/30 m: (a) the CDF of the selected coded bitrate,
(b) the uncoded BER of the coded stream, and (c) the PER, for the adaptive
scheme and the three fixed-bandwidth baselines.

Paper outcome: the median bitrate falls from 633 bps at 5 m to 133 bps at
30 m (largest drop between 5 and 10 m); the fixed schemes' BER grows
quickly with distance and their PER reaches 100 % at 30 m, while the
adaptive scheme stays around 7 %.
"""

from benchmarks._common import (
    ALL_SCHEMES, CDF_PERCENTILES, cdf_row, print_figure, runner, scheme_label,
)
from repro.core.baselines import FIXED_BAND_SCHEMES
from repro.environments.sites import LAKE
from repro.experiments import Scenario, Sweep

DISTANCES_M = (5.0, 10.0, 20.0, 30.0)
NUM_PACKETS = 25

#: One scenario per (distance, scheme), seed following the distance index.
SWEEP = (
    Sweep(Scenario(site=LAKE, num_packets=NUM_PACKETS))
    .paired(
        distance_m=list(DISTANCES_M),
        seed=[80 + i for i in range(len(DISTANCES_M))],
    )
    .over(scheme=list(ALL_SCHEMES))
)


def _run():
    results = runner().run(SWEEP)
    bitrate_rows, ber_rows, per_rows = [], [], []
    medians = {}
    adaptive_per_30 = None
    fixed_per_30 = []
    for distance in DISTANCES_M:
        adaptive = results.lookup(distance_m=distance, scheme="adaptive")
        medians[distance] = adaptive.median_bitrate_bps
        bitrate_rows.append([f"{distance:.0f} m"] + cdf_row(adaptive.finite_bitrates_bps))
        ber_row = [f"{distance:.0f} m", f"{adaptive.coded_bit_error_rate:.3f}"]
        per_row = [f"{distance:.0f} m", f"{adaptive.packet_error_rate:.2f}"]
        if distance == 30.0:
            adaptive_per_30 = adaptive.packet_error_rate
        for scheme in FIXED_BAND_SCHEMES:
            fixed = results.lookup(distance_m=distance, scheme=scheme)
            ber_row.append(f"{fixed.coded_bit_error_rate:.3f}")
            per_row.append(f"{fixed.packet_error_rate:.2f}")
            if distance == 30.0:
                fixed_per_30.append(fixed.packet_error_rate)
        ber_rows.append(ber_row)
        per_rows.append(per_row)
    return bitrate_rows, ber_rows, per_rows, medians, adaptive_per_30, fixed_per_30


def test_fig12_range(benchmark):
    (bitrate_rows, ber_rows, per_rows, medians,
     adaptive_per_30, fixed_per_30) = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["distance", "adaptive (ours)"] + [scheme_label(s) for s in FIXED_BAND_SCHEMES]
    table_a = print_figure(
        "Fig. 12a -- selected coded bitrate CDF vs distance (lake)",
        ["distance"] + [f"p{p}" for p in CDF_PERCENTILES],
        bitrate_rows,
        notes="Paper medians: 633 bps at 5 m falling to 133 bps at 30 m.",
    )
    table_b = print_figure("Fig. 12b -- uncoded BER vs distance", headers, ber_rows)
    table_c = print_figure(
        "Fig. 12c -- PER vs distance", headers, per_rows,
        notes="Paper: fixed 1.5/3 kHz bands reach 100 % PER at 30 m; the "
              "adaptive scheme stays near 7 %.",
    )
    benchmark.extra_info["table"] = table_a + table_b + table_c
    # Shape checks.
    assert medians[30.0] < medians[5.0], "bitrate must fall with distance"
    assert medians[5.0] > 300.0
    assert medians[30.0] < 350.0
    assert adaptive_per_30 is not None and fixed_per_30
    assert adaptive_per_30 <= max(fixed_per_30), (
        "the adaptive scheme must beat the worst fixed scheme at 30 m")
