"""Fig. 9 -- effect of different environments (bridge, park, lake) at 5 m.

Panel (a): CDF of the coded bitrate selected by the adaptation algorithm at
each location.  Panels (b,c): example received spectra with the selected
band (represented here by the median selected band edges).  Panel (d): PER
of the adaptive scheme versus the three fixed-bandwidth baselines.

Paper outcome: the selected bitrate varies across (and within) locations,
the bridge supports the highest rates, and the adaptive scheme keeps the
PER around 1 % on average while fixed bands suffer at the multipath-heavy
sites.
"""

import numpy as np

from benchmarks._common import (
    ALL_SCHEMES, CDF_PERCENTILES, cdf_row, print_figure, runner, scheme_label,
)
from repro.core.baselines import FIXED_BAND_SCHEMES
from repro.environments.sites import BRIDGE, LAKE, PARK
from repro.experiments import Scenario, Sweep

SITES = (BRIDGE, PARK, LAKE)
NUM_PACKETS = 25

#: One scenario per (site, scheme); the seed follows the site index so the
#: numbers match the original hand-rolled loops exactly.
SWEEP = (
    Sweep(Scenario(distance_m=5.0, num_packets=NUM_PACKETS))
    .paired(site=list(SITES), seed=[20 + i for i in range(len(SITES))])
    .over(scheme=list(ALL_SCHEMES))
)


def _run():
    results = runner().run(SWEEP)
    bitrate_rows, per_rows, band_rows = [], [], []
    adaptive_pers = {}
    for site in SITES:
        adaptive = results.lookup(site=site, scheme="adaptive")
        adaptive_pers[site.name] = adaptive.packet_error_rate
        bitrate_rows.append([site.name] + cdf_row(adaptive.finite_bitrates_bps))
        start_hz, end_hz = adaptive.median_band_edges_hz()
        if np.isfinite(start_hz):
            band_rows.append([site.name, f"{start_hz:.0f}", f"{end_hz:.0f}"])
        per_row = [site.name, f"{adaptive.packet_error_rate:.2f}"]
        for scheme in FIXED_BAND_SCHEMES:
            fixed = results.lookup(site=site, scheme=scheme)
            per_row.append(f"{fixed.packet_error_rate:.2f}")
        per_rows.append(per_row)
    return bitrate_rows, band_rows, per_rows, adaptive_pers


def test_fig09_environments(benchmark):
    bitrate_rows, band_rows, per_rows, adaptive_pers = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    table_a = print_figure(
        "Fig. 9a -- selected coded bitrate CDF at 5 m (bps)",
        ["site"] + [f"p{p}" for p in CDF_PERCENTILES],
        bitrate_rows,
        notes="Paper: bitrates vary across runs and locations; the quiet bridge "
              "site supports the highest rates.",
    )
    table_bc = print_figure(
        "Fig. 9b/c -- median selected band edges (Hz)",
        ["site", "f_begin", "f_end"],
        band_rows,
    )
    table_d = print_figure(
        "Fig. 9d -- packet error rate at 5 m",
        ["site", "adaptive (ours)"] + [scheme_label(s) for s in FIXED_BAND_SCHEMES],
        per_rows,
        notes="Paper: adaptive PER stays ~1 % on average; fixed bands degrade "
              "with multipath (worst at the lake).",
    )
    benchmark.extra_info["table"] = table_a + table_bc + table_d
    # Shape checks: the adaptive scheme keeps PER low at every site, and the
    # full-band fixed scheme is never better than adaptive at the lake.
    assert all(per <= 0.25 for per in adaptive_pers.values())
    lake_row = [r for r in per_rows if r[0] == "lake"][0]
    assert float(lake_row[1]) <= float(lake_row[2])
