"""Dive messaging: two divers exchanging hand-signal messages during a dive.

This example reproduces the paper's motivating scenario (section 1): two
recreational divers at the lake site keep in touch with predefined
hand-signal messages while their separation changes over the course of the
dive.  It uses the high-level :class:`repro.app.Messenger` API on top of a
full simulated link and reports the delivery outcome, the selected bitrate
and an airtime estimate for every message.

Run with:  python examples/dive_messaging.py
"""

from __future__ import annotations

import numpy as np

from repro.app.messenger import Messenger
from repro.channel.motion import SLOW_MOTION
from repro.environments import LAKE, build_link_pair
from repro.link import LinkSession

#: (distance in metres, messages the lead diver sends at that point)
DIVE_PLAN = [
    (5.0, ["OK?"]),
    (5.0, ["OK!", "Look - a turtle"]),
    (10.0, ["Stay with your buddy"]),
    (15.0, ["How much air do you have?"]),
    (15.0, ["I have 100 bar"]),
    (20.0, ["Turn around", "Head to the boat"]),
    (10.0, ["Safety stop here"]),
    (5.0, ["Surface now", "Dive is complete"]),
]


def find_ids(texts):
    from repro.app.messages import MESSAGE_CATALOG

    ids = []
    for text in texts:
        matches = [m.message_id for m in MESSAGE_CATALOG if m.text == text]
        if not matches:
            raise SystemExit(f"message {text!r} is not in the catalog")
        ids.append(matches[0])
    return ids


def main() -> None:
    print("Dive messaging at the lake site (divers moving slowly)\n")
    rng = np.random.default_rng(2024)
    delivered = 0
    total_airtime = 0.0

    for step, (distance, texts) in enumerate(DIVE_PLAN):
        forward, backward = build_link_pair(
            site=LAKE, distance_m=distance, motion=SLOW_MOTION,
            seed=int(rng.integers(0, 2 ** 31 - 1)),
        )
        session = LinkSession(forward, backward, seed=step)
        messenger = Messenger(session, max_retransmissions=2, seed=step)
        report = messenger.send_message_ids(find_ids(texts))
        delivered += int(report.success)
        status = "delivered" if report.success else "LOST    "
        bitrate = report.bitrate_bps
        airtime = report.latency_estimate_s
        if np.isfinite(airtime):
            total_airtime += airtime * report.attempts
        print(f"[{distance:4.1f} m] {status}  "
              f"{' + '.join(texts):45s} "
              f"attempts={report.attempts}  "
              f"bitrate={bitrate:6.0f} bps  "
              f"airtime~{airtime * 1000 if np.isfinite(airtime) else float('nan'):5.0f} ms")

    print(f"\n{delivered}/{len(DIVE_PLAN)} messages delivered "
          f"(total payload airtime ~{total_airtime:.2f} s)")
    print("Hand signals would have required visual contact at every one of "
          "these points; the acoustic link does not.")


if __name__ == "__main__":
    main()
