"""Quickstart: one adaptive packet exchange, step by step.

This example walks through the post-preamble feedback protocol (Fig. 5 of
the paper) between two simulated Galaxy S9 phones submerged 1 m deep and
5 m apart at the lake site, printing what each side does at every step:

1. Alice transmits the CAZAC preamble and Bob's ID.
2. Bob detects the preamble, estimates per-subcarrier SNR and selects the
   frequency band to use.
3. Bob feeds the band back as a two-tone OFDM symbol; Alice decodes it.
4. Alice encodes 16 payload bits (two hand-signal messages) inside the band
   and transmits; Bob equalizes, demodulates and Viterbi-decodes them.

It then reruns the same experiment declaratively through
:mod:`repro.experiments` -- the one-scenario version of how the benchmark
suite sweeps whole parameter grids.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.app.codec import MessageCodec
from repro.app.messages import get_message
from repro.core.modem import AquaModem
from repro.environments import LAKE, build_link_pair
from repro.experiments import ExperimentRunner, Scenario, Sweep


def main() -> None:
    rng = np.random.default_rng(7)
    modem = AquaModem()
    config = modem.ofdm_config

    print("AquaApp quickstart -- one packet, step by step")
    print(f"  OFDM: {config.num_data_bins} subcarriers of "
          f"{config.subcarrier_spacing_hz:.0f} Hz between "
          f"{config.band_low_hz:.0f} and {config.band_high_hz:.0f} Hz, "
          f"{config.symbol_duration_s * 1000:.0f} ms symbols\n")

    forward, backward = build_link_pair(site=LAKE, distance_m=5.0, seed=7)
    print(f"Channel: {LAKE.description}")
    print(f"  distance 5.0 m, both phones 1 m deep, ambient noise "
          f"{LAKE.noise_level_db:.0f} dB\n")

    # --- Step 1: Alice sends the preamble + receiver ID -------------------
    codec = MessageCodec()
    message_ids = [0, 35]  # "OK?" plus an air/gas message
    payload = codec.encode_ids(message_ids)
    print("Alice wants to send:")
    for message_id in message_ids:
        message = get_message(message_id)
        print(f"  [{message.message_id:3d}] {message.text}  ({message.category})")
    header = modem.build_preamble_and_header(receiver_id=1)
    print(f"\nStep 1: Alice transmits the preamble + header "
          f"({header.waveform.size} samples, "
          f"{header.waveform.size / config.sample_rate_hz * 1000:.0f} ms)")
    received = modem.filter_received(forward.transmit(header.waveform, rng).samples)

    # --- Step 2: Bob detects and selects a band ---------------------------
    detection = modem.detect_preamble(received)
    print(f"Step 2: Bob detects the preamble at sample {detection.start_index} "
          f"(sliding-correlation metric {detection.fine_metric:.2f})")
    estimate = modem.estimate_snr(received, detection.start_index)
    band = modem.select_band(estimate)
    print(f"        per-subcarrier SNR: median {np.median(estimate.snr_db):.1f} dB, "
          f"min {np.min(estimate.snr_db):.1f} dB, max {np.max(estimate.snr_db):.1f} dB")
    print(f"        selected band: {band.start_frequency_hz:.0f}-"
          f"{band.end_frequency_hz:.0f} Hz ({band.num_bins} subcarriers, "
          f"{modem.bitrate_for_band(band):.0f} bps coded)")

    # --- Step 3: feedback ---------------------------------------------------
    feedback_symbol = modem.build_feedback(band)
    feedback_received = modem.filter_received(backward.transmit(feedback_symbol, rng).samples)
    feedback = modem.decode_feedback(feedback_received)
    alice_band = modem.band_from_feedback(feedback)
    print(f"Step 3: Bob feeds back (f_begin, f_end); Alice decodes "
          f"{alice_band.start_frequency_hz:.0f}-{alice_band.end_frequency_hz:.0f} Hz "
          f"(two-tone power ratio {feedback.peak_power_ratio:.2f})")

    # --- Step 4: data --------------------------------------------------------
    packet = modem.encode_data(payload, alice_band)
    silence = np.zeros(2 * config.extended_symbol_length)
    waveform = np.concatenate([header.waveform, silence, packet.waveform])
    received = modem.filter_received(forward.transmit(waveform, rng).samples)
    detection = modem.detect_preamble(received)
    data_start = (detection.start_index + modem.preamble_generator.total_length
                  + config.extended_symbol_length + silence.size)
    decoded = modem.decode_data(received[data_start:], band, payload.size)
    errors = int(np.count_nonzero(decoded.bits != payload))
    print(f"Step 4: Alice sends {packet.num_payload_bits} payload bits "
          f"({packet.num_coded_bits} coded) in {packet.num_data_symbols} OFDM "
          f"data symbol(s); Bob decodes with {errors} bit error(s)\n")

    if errors == 0:
        decoded_messages = codec.decode_messages(decoded.bits)
        print("Bob's screen shows:")
        for message in decoded_messages:
            print(f"  [{message.message_id:3d}] {message.text}")
    else:
        print("The packet was corrupted; Alice would retransmit after the missing ACK.")

    # --- The declarative way --------------------------------------------
    # The same experiment as a Scenario, plus a two-distance mini sweep run
    # through the experiment runner (this is what the benchmark suite does
    # at scale, with worker processes and a result cache).
    print("\nThe same link, declaratively (repro.experiments):")
    sweep = (
        Sweep(Scenario(site=LAKE, distance_m=5.0, num_packets=4))
        .over(distance_m=[5.0, 10.0])
        .seeded(7)
    )
    results = ExperimentRunner(max_workers=1).run(sweep)
    print(results.to_table())


if __name__ == "__main__":
    main()
