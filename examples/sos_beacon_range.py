"""SoS beacons: long-range, low-rate distress signalling.

A snorkeler in trouble at the beach site broadcasts an SoS beacon carrying
their 6-bit user ID using the FSK mode (paper section 3).  This example
sweeps the receiver distance out to 113 m and the three supported bit rates
(5, 10, 20 bps), showing that the slow rates remain decodable far beyond
the range of the OFDM messaging mode.

Run with:  python examples/sos_beacon_range.py
"""

from __future__ import annotations

from repro.app.sos import SosBeaconService
from repro.environments import BEACH, build_channel

USER_ID = 27
DISTANCES_M = (25.0, 50.0, 75.0, 100.0, 113.0)
RATES_BPS = (5, 10, 20)
REPETITIONS = 5


def main() -> None:
    print(f"SoS beacon range sweep at the beach (user id {USER_ID})\n")
    header = "distance " + "".join(f"{rate:>18d} bps" for rate in RATES_BPS)
    print(header)
    print("-" * len(header))
    for i, distance in enumerate(DISTANCES_M):
        cells = [f"{distance:6.0f} m "]
        for rate in RATES_BPS:
            channel = build_channel(site=BEACH, distance_m=distance, seed=300 + i)
            service = SosBeaconService(channel, bit_rate_bps=rate, seed=400 + i)
            receptions = service.broadcast_many(USER_ID, REPETITIONS)
            correct = sum(r.user_id == USER_ID for r in receptions)
            bit_errors = sum(r.bit_errors for r in receptions)
            cells.append(f"{correct}/{REPETITIONS} ids, {bit_errors:2d} bit err".rjust(22))
        print("".join(cells))
    duration = 6 / 10.0
    print(f"\nA 10 bps beacon takes {duration:.1f} s to transmit the 6-bit ID; "
          "the paper reports <1% bit errors for 5-10 bps out to 113 m.")


if __name__ == "__main__":
    main()
