"""Multi-diver network: carrier-sense MAC with several transmitters.

A dive group of three divers plus a dive leader (the receiver) all try to
send messages at the same time.  This example runs the discrete-event MAC
simulation of section 2.4 with and without carrier sense and reports the
fraction of packets that collide, reproducing the behaviour of Fig. 19.
It also demonstrates the energy-detection primitive itself: calibrating the
busy threshold from ambient noise and then classifying idle/busy windows.

Run with:  python examples/multi_diver_network.py
"""

from __future__ import annotations

import numpy as np

from repro.environments import BRIDGE
from repro.environments.factory import build_noise_model
from repro.mac.carrier_sense import EnergyDetector
from repro.mac.simulator import MacNetworkSimulator, TransmitterConfig


def carrier_sense_demo() -> None:
    print("Energy-detection carrier sense (bridge site)")
    detector = EnergyDetector()
    noise_model = build_noise_model(BRIDGE)
    ambient = noise_model.generate(3 * 48000, 48000.0, rng=1)
    threshold = detector.calibrate(ambient)
    print(f"  calibrated busy threshold: {threshold:.1f} dB "
          f"(ambient + {detector.config.threshold_margin_db:.0f} dB margin)")
    window = detector.samples_per_measurement
    t = np.arange(window) / 48000.0
    packet = 0.2 * np.sin(2 * np.pi * 2500.0 * t)
    print(f"  idle window classified busy?   {detector.is_busy(ambient[:window])}")
    print(f"  window with a packet busy?     {detector.is_busy(packet + ambient[:window])}\n")


def network_demo() -> None:
    print("Three transmitters, one receiver, 120 packets each (Fig. 19 setup)")
    transmitters = [
        TransmitterConfig(name=f"diver-{i + 1}", distance_to_receiver_m=5.0 + 2.5 * i,
                          num_packets=120)
        for i in range(3)
    ]
    for carrier_sense in (False, True):
        simulator = MacNetworkSimulator(transmitters, carrier_sense=carrier_sense)
        result = simulator.run(seed=11)
        label = "with carrier sense   " if carrier_sense else "without carrier sense"
        print(f"  {label}: {result.collision_fraction:5.1%} of "
              f"{result.num_packets} packets collided")
        for config in transmitters:
            fraction = result.collision_fraction_for(config.name)
            print(f"      {config.name}: {fraction:5.1%}")
    print("\nThe paper measures 53% -> 7% for this three-transmitter network "
          "once carrier sense is enabled (33% -> 5% with two transmitters).")


def main() -> None:
    carrier_sense_demo()
    network_demo()


if __name__ == "__main__":
    main()
